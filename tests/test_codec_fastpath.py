"""Codec fast path (docs/performance.md, "Codec fast path").

Four concerns, one file:

- the three parser *contract* fixes that rode along with the fast path:
  malformed character references raise :class:`XmlParseError` with an
  offset (never a bare ``ValueError``), colons are rejected at scan time
  (no leading/trailing/multiple colons reach a :class:`QName`), and an
  XML declaration is legal only at offset 0;
- QName interning (:meth:`QName.of` / :meth:`QName.of_clark`);
- a Hypothesis round-trip property ``parse(to_string(e)).equals(e)``
  over trees richer than the ``test_xmlx`` one — several namespaces,
  default-namespace children, qualified attributes, entity-bearing
  text/tails;
- coherence oracles for the two content-addressed caches
  (:class:`repro.db.DecodeCache`, :class:`repro.soap.EnvelopeCache`):
  value isolation, destroy-then-recreate, post-restore invalidation,
  move-semantics of the encode→parse bridge — plus the codec-only
  differential (byte-identical traces, timestamps included) the
  wall-clock benchmark also pins.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import BlobResourceStore, CachedResourceStore, DecodeCache
from repro.db.resource_store import decode_state, encode_state
from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program
from repro.perf import PerfConfig
from repro.soap import EnvelopeCache, SoapEnvelope
from repro.wsa import AddressingHeaders, EndpointReference
from repro.xmlx import NS, Element, QName, XmlParseError, parse, to_string

UVA = NS.UVACG


# -- satellite 1: malformed character references ------------------------------------


class TestCharReferenceErrors:
    @pytest.mark.parametrize("ref", ["&#xZZ;", "&#;", "&#x;", "&#1a;", "&#x1G;"])
    def test_malformed_references_raise_parse_error(self, ref):
        with pytest.raises(XmlParseError, match="malformed character reference"):
            parse(f"<a>{ref}</a>")

    def test_non_ascii_digits_rejected(self):
        # int("١٢") would happily parse Arabic-Indic digits; the scanner
        # must not.
        with pytest.raises(XmlParseError, match="malformed character reference"):
            parse("<a>&#١٢;</a>")

    def test_beyond_unicode_rejected(self):
        with pytest.raises(XmlParseError, match="beyond U\\+10FFFF"):
            parse("<a>&#x110000;</a>")
        with pytest.raises(XmlParseError, match="beyond U\\+10FFFF"):
            parse("<a>&#1114112;</a>")

    @pytest.mark.parametrize("ref", ["&#xD800;", "&#xDFFF;", "&#55296;"])
    def test_surrogates_rejected(self, ref):
        with pytest.raises(XmlParseError, match="surrogate code point"):
            parse(f"<a>{ref}</a>")

    def test_error_carries_offset(self):
        text = "<a>pad&#xZZ;</a>"
        with pytest.raises(XmlParseError) as err:
            parse(text)
        assert err.value.pos == text.index("&#xZZ;")
        assert "offset" in str(err.value)

    def test_errors_in_attribute_values_too(self):
        with pytest.raises(XmlParseError, match="malformed character reference"):
            parse('<a b="&#xZZ;"/>')

    def test_valid_references_still_decode(self):
        root = parse("<a>&#65;&#x42;&#x10FFFF;</a>")
        assert root.text == "AB\U0010ffff"


# -- satellite 2: colon placement in names ------------------------------------------


class TestColonNameRejection:
    def test_leading_colon_rejected(self):
        with pytest.raises(XmlParseError, match="expected a name"):
            parse("<:foo/>")

    def test_multiple_colons_rejected(self):
        with pytest.raises(XmlParseError, match="multiple colons"):
            parse('<a:b:c xmlns:a="http://u"/>')

    def test_trailing_colon_rejected(self):
        with pytest.raises(XmlParseError, match="must not end with a colon"):
            parse('<foo: xmlns:foo="http://u"/>')

    def test_attribute_names_checked_too(self):
        with pytest.raises(XmlParseError, match="multiple colons"):
            parse('<r xmlns:a="http://u" a:b:c="1"/>')
        with pytest.raises(XmlParseError, match="must not end with a colon"):
            parse('<r a:="1"/>')

    def test_end_tag_names_checked_too(self):
        with pytest.raises(XmlParseError, match="multiple colons"):
            parse('<a:b xmlns:a="http://u">x</a:b:c>')

    def test_single_colon_still_fine(self):
        root = parse('<a:b xmlns:a="http://u"/>')
        assert root.tag == QName("http://u", "b")


# -- satellite 3: XML declaration placement -----------------------------------------


class TestXmlDeclPlacement:
    def test_declaration_at_offset_zero_ok(self):
        assert parse('<?xml version="1.0"?><a/>').tag == QName("a")

    def test_declaration_after_whitespace_rejected(self):
        with pytest.raises(XmlParseError, match="misplaced XML declaration"):
            parse('  <?xml version="1.0"?><a/>')

    def test_declaration_after_comment_rejected(self):
        with pytest.raises(XmlParseError, match="misplaced XML declaration"):
            parse('<!-- c --><?xml version="1.0"?><a/>')

    def test_repeated_declaration_rejected(self):
        with pytest.raises(XmlParseError, match="misplaced XML declaration"):
            parse('<?xml version="1.0"?><?xml version="1.0"?><a/>')

    def test_declaration_after_root_rejected(self):
        with pytest.raises(XmlParseError, match="misplaced XML declaration"):
            parse('<a/><?xml version="1.0"?>')

    def test_case_insensitive(self):
        with pytest.raises(XmlParseError, match="misplaced XML declaration"):
            parse(' <?XML version="1.0"?><a/>')

    def test_xml_prefixed_pi_is_not_a_declaration(self):
        # A PI whose target merely *starts* with "xml" is an ordinary PI.
        assert parse('<?xml-stylesheet href="s"?><a/>').tag == QName("a")


# -- QName interning ----------------------------------------------------------------


class TestQNameInterning:
    def test_of_returns_shared_instance(self):
        assert QName.of("http://u", "x") is QName.of("http://u", "x")

    def test_of_clark_shares_with_of(self):
        assert QName.of_clark("{http://u}x") is QName.of("http://u", "x")
        assert QName.of_clark("bare") is QName.of("", "bare")

    def test_interned_equals_plain_constructor(self):
        plain = QName("http://u", "x")
        interned = QName.of("http://u", "x")
        assert plain == interned and hash(plain) == hash(interned)

    def test_parser_emits_interned_names(self):
        a = parse('<a:b xmlns:a="http://u"/>').tag
        b = parse('<a:b xmlns:a="http://u"/>').tag
        assert a is b


# -- Hypothesis round-trip over rich trees ------------------------------------------

_URIS = ("", "http://one", "http://two", NS.SOAP)
_locals = st.text(alphabet=st.sampled_from("abcdefgh"), min_size=1, max_size=6)
_qnames = st.builds(
    lambda uri, local: QName(uri, local) if uri else QName(local),
    st.sampled_from(_URIS), _locals,
)
# Texts exercise every escape and entity route, plus non-ASCII.
_rich_texts = st.text(
    alphabet=st.sampled_from("ab <>&\"'\r\n\tzé "), min_size=0, max_size=16
)


@st.composite
def _rich_elements(draw, depth=0):
    el = Element(draw(_qnames))
    el.text = draw(_rich_texts)
    for name in draw(st.lists(_qnames, max_size=3, unique_by=lambda q: (q.uri, q.local))):
        el.set(name, draw(_rich_texts))
    if depth < 3:
        for child in draw(st.lists(_rich_elements(depth=depth + 1), max_size=3)):
            el.append(child)
            child.tail = draw(_rich_texts)
    return el


class TestRoundtripProperty:
    @given(_rich_elements())
    def test_parse_of_to_string_is_identity(self, element):
        reference = element.copy()
        reference.tail = ""  # root tails are not serialized
        assert parse(to_string(element)).equals(reference)

    @given(_rich_elements())
    def test_roundtrip_with_declaration(self, element):
        reference = element.copy()
        reference.tail = ""
        assert parse(to_string(element, xml_declaration=True)).equals(reference)

    @given(_rich_elements())
    def test_roundtrip_survives_a_second_trip(self, element):
        once = parse(to_string(element))
        assert parse(to_string(once)).equals(once)


# -- DecodeCache coherence ----------------------------------------------------------


def _state(n=0):
    return {
        QName(UVA, "Name"): f"job-{n}",
        QName(UVA, "Count"): n,
        QName(UVA, "Tags"): ["a", "b", n],
        QName(UVA, "Meta"): {"k": f"v{n}"},
        QName(UVA, "Doc"): Element(QName(UVA, "payload"), text=f"t{n}"),
    }


def _values_equal(a, b):
    """Structural equality over the typed-value universe (Element has
    identity ``__eq__``; dicts/lists may nest Elements)."""
    if isinstance(a, Element):
        return isinstance(b, Element) and a.equals(b)
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_values_equal(a[k], b[k]) for k in a))
    if isinstance(a, list):
        return (isinstance(b, list) and len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    return a == b


class TestDecodeCache:
    def test_decode_matches_uncached(self):
        cache = DecodeCache()
        blob = encode_state(_state(1))
        assert _values_equal(cache.decode(blob), decode_state(blob))
        assert (cache.hits, cache.misses) == (0, 1)
        assert _values_equal(cache.decode(blob), decode_state(blob))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_returned_values_are_isolated(self):
        cache = DecodeCache()
        blob = encode_state(_state(1))
        first = cache.decode(blob)
        first[QName(UVA, "Tags")].append("mutated")
        first[QName(UVA, "Meta")]["k"] = "mutated"
        first[QName(UVA, "Doc")].text = "mutated"
        assert _values_equal(cache.decode(blob), decode_state(blob))

    def test_encode_warms_the_cache(self):
        cache = DecodeCache()
        state = _state(2)
        blob = cache.encode(state)
        assert blob == encode_state(state)
        assert _values_equal(cache.decode(blob), decode_state(blob))
        assert (cache.hits, cache.misses) == (1, 0)

    def test_encode_isolates_from_caller_mutation(self):
        cache = DecodeCache()
        state = _state(3)
        blob = cache.encode(state)
        state[QName(UVA, "Tags")].append("mutated-after-save")
        state[QName(UVA, "Doc")].text = "mutated-after-save"
        assert _values_equal(cache.decode(blob), decode_state(blob))

    def test_capacity_bounded_fifo(self):
        cache = DecodeCache(capacity=2)
        blobs = [encode_state(_state(n)) for n in range(3)]
        for blob in blobs:
            cache.decode(blob)
        cache.decode(blobs[0])  # evicted by blobs[2] — a miss again
        assert cache.misses == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DecodeCache(capacity=0)


class TestDecodeCacheThroughStores:
    """The cache is content-addressed, so store-level lifecycle events
    (destroy/recreate, checkpoint restore) need no invalidation — prove
    it against the uncached store as oracle."""

    def _stores(self):
        cached = CachedResourceStore()
        shared = DecodeCache()
        cached.decode_cache = shared
        cached.inner.decode_cache = shared
        return cached, BlobResourceStore()

    def test_destroy_then_recreate_serves_fresh_state(self):
        store, oracle = self._stores()
        for s in (store, oracle):
            s.create("Exec", "r1", _state(1))
        for s in (store, oracle):
            s.destroy("Exec", "r1")
            s.create("Exec", "r1", _state(2))
        assert _values_equal(store.load("Exec", "r1"), oracle.load("Exec", "r1"))
        store.assert_coherent()

    def test_restore_rolls_back_cached_state(self):
        store, oracle = self._stores()
        for s in (store, oracle):
            s.create("Exec", "r1", _state(1))
        snap_store, snap_oracle = store.snapshot(), oracle.snapshot()
        for s in (store, oracle):
            s.save("Exec", "r1", _state(9))
            s.load("Exec", "r1")
        store.restore(snap_store)
        oracle.restore(snap_oracle)
        assert _values_equal(store.load("Exec", "r1"), oracle.load("Exec", "r1"))
        assert store.load("Exec", "r1")[QName(UVA, "Name")] == "job-1"
        store.assert_coherent()

    @given(st.lists(st.sampled_from(["create", "save", "load", "destroy"]),
                    min_size=1, max_size=12))
    def test_random_op_sequences_match_oracle(self, ops):
        store, oracle = self._stores()
        n = 0
        for op in ops:
            n += 1
            results = []
            for s in (store, oracle):
                try:
                    if op == "create":
                        s.create("Svc", "r", _state(n))
                        results.append(("created", None))
                    elif op == "save":
                        s.save("Svc", "r", _state(n))
                        results.append(("saved", None))
                    elif op == "load":
                        results.append(("loaded", s.load("Svc", "r")))
                    else:
                        s.destroy("Svc", "r")
                        results.append(("destroyed", None))
                except KeyError:
                    results.append(("missing", None))
                except Exception as exc:  # e.g. duplicate create
                    results.append((type(exc).__name__, None))
            assert results[0][0] == results[1][0]
            assert _values_equal(results[0][1], results[1][1])
        store.assert_coherent()


# -- EnvelopeCache coherence --------------------------------------------------------


def _envelope(n=0):
    epr = EndpointReference(
        "http://node1:80/Exec", {QName(UVA, "ResourceID"): f"r-{n}"}
    )
    body = Element(QName(UVA, "Run"))
    body.subelement(QName(UVA, "Arg"), text=f"value-{n}")
    return SoapEnvelope(
        AddressingHeaders(epr, action="urn:Run", message_id=f"uuid:m-{n}"), body
    )


class TestEnvelopeCache:
    def test_encode_memoizes_per_envelope(self):
        cache = EnvelopeCache()
        env = _envelope()
        assert env.serialize(cache) == env.serialize(cache)
        assert (cache.encode_hits, cache.encode_misses) == (1, 1)
        assert env.serialize(cache) == env.serialize()  # same wire text

    def test_encode_parse_bridge_hits_without_reparsing(self):
        cache = EnvelopeCache()
        wire = _envelope().serialize(cache)
        parsed = SoapEnvelope.deserialize(wire, cache)
        assert (cache.parse_hits, cache.parse_misses) == (1, 0)
        assert parsed.serialize() == wire  # semantically the same message

    def test_repeat_deliveries_are_isolated(self):
        # Same wire text delivered many times (retries, redeliveries):
        # each handler may mutate what it got; later deliveries must
        # never see it.
        cache = EnvelopeCache()
        wire = _envelope().serialize(cache)
        reference = SoapEnvelope.deserialize(wire)
        for _ in range(5):
            got = SoapEnvelope.deserialize(wire, cache)
            assert got.body.equals(reference.body)
            assert got.addressing.message_id == reference.addressing.message_id
            got.body.children[0].text = "CORRUPTED"
            got.body.set(QName(UVA, "hacked"), "yes")
        assert cache.parse_hits > 0

    def test_uncached_texts_hit_after_second_sighting(self):
        cache = EnvelopeCache()
        wire = _envelope().serialize()  # never passed through encode()
        reference = SoapEnvelope.deserialize(wire)
        for _ in range(4):
            got = SoapEnvelope.deserialize(wire, cache)
            assert got.body.equals(reference.body)
            got.body.children[0].text = "CORRUPTED"
        assert cache.parse_hits > 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EnvelopeCache(capacity=0)


# -- the codec-only differential ----------------------------------------------------


def _run_fig3(perf):
    tb = Testbed(n_machines=3, seed=11, machine_speeds=[1.0, 1.0, 1.0],
                 perf=perf)
    tb.programs.register(make_compute_program("work", 10.0, outputs={"out": b"x"}))
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(4):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, job_states, outputs = tb.run_job_set(client, spec)
    tb.settle()
    return tb, outcome, job_states, outputs


class TestCodecOnlyDifferential:
    """``PerfConfig.codec_only()`` changes host CPU only: the full step
    trace — timestamps included — is byte-identical to a run with no
    perf layer at all (stronger than the other knobs, which are allowed
    to shift simulated latencies)."""

    def test_traces_byte_identical(self):
        tb_off, outcome_off, states_off, outputs_off = _run_fig3(None)
        tb_on, outcome_on, states_on, outputs_on = _run_fig3(
            PerfConfig.codec_only()
        )
        assert (outcome_off, states_off, outputs_off) == \
            (outcome_on, states_on, outputs_on)
        assert tb_off.env.now == tb_on.env.now
        assert [(e.at, e.step, e.actor, e.detail) for e in tb_off.trace.events] == \
            [(e.at, e.step, e.actor, e.detail) for e in tb_on.trace.events]
        # ... and the caches actually engaged, or this proved nothing.
        assert tb_on.network.codec.parse_hits > 0
        decode = tb_on.scheduler.store.decode_cache
        assert decode is not None and decode.hits > 0
