"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Channel,
    ChannelClosed,
    Environment,
    Interrupt,
    ProcessKilled,
    SimulationError,
)


class TestEvent:
    def test_event_starts_pending(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_carries_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok and ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callback_after_processed_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("v")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_unhandled_failure_raises_from_run(self):
        env = Environment()
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()


class TestTimeout:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value(self):
        env = Environment()
        t = env.timeout(1.0, value="done")
        env.run()
        assert t.value == "done"

    def test_ordering_by_time_then_insertion(self):
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, "b", 2.0))
        env.process(proc(env, "a", 1.0))
        env.process(proc(env, "a2", 1.0))
        env.run()
        assert order == ["a", "a2", "b"]


class TestProcess:
    def test_process_return_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1)
            return "result"

        p = env.process(worker(env))
        env.run()
        assert p.value == "result"

    def test_process_waits_on_event(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter(env):
            v = yield gate
            log.append((env.now, v))

        def opener(env):
            yield env.timeout(3)
            gate.succeed("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert log == [(3.0, "open")]

    def test_failed_event_raises_inside_process(self):
        env = Environment()
        gate = env.event()
        caught = []

        def waiter(env):
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        gate.fail(RuntimeError("nope"))
        env.run()
        assert caught == ["nope"]

    def test_uncaught_process_exception_propagates(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise KeyError("missing")

        env.process(bad(env))
        with pytest.raises(KeyError):
            env.run()

    def test_process_is_waitable(self):
        env = Environment()

        def inner(env):
            yield env.timeout(2)
            return 7

        def outer(env):
            v = yield env.process(inner(env))
            return v * 2

        p = env.process(outer(env))
        env.run()
        assert p.value == 14

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        p = env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()
        assert p.triggered and not p.ok

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_interrupt_delivers_cause(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                log.append((env.now, i.cause))

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(5)
            p.interrupt("wake up")

        env.process(interrupter(env))
        env.run()
        assert log == [(5.0, "wake up")]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_kill_runs_finally_blocks(self):
        env = Environment()
        cleaned = []

        def victim(env):
            try:
                yield env.timeout(100)
            finally:
                cleaned.append(True)

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(1)
            p.kill("test")

        env.process(killer(env))
        env.run()
        assert cleaned == [True]
        assert isinstance(p.value, ProcessKilled)

    def test_active_process_tracking(self):
        env = Environment()
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(0)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestRun:
    def test_run_until_time(self):
        env = Environment()
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=5)
        assert ticks == [1, 2, 3, 4, 5]
        assert env.now == 5

    def test_run_until_event_returns_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(2)
            return "x"

        p = env.process(worker(env))
        assert env.run(until=p) == "x"

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_until_event_never_fires(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError, match="drained"):
            env.run(until=ev)

    def test_run_until_already_triggered_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed(9)
        assert env.run(until=ev) == 9

    def test_step_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_run_advances_clock_to_deadline_when_idle(self):
        env = Environment()
        env.run(until=50)
        assert env.now == 50


class TestConditions:
    def test_all_of_collects_values(self):
        env = Environment()
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        cond = AllOf(env, [t1, t2])
        env.run(until=cond)
        assert list(cond.value.values()) == ["a", "b"]
        assert env.now == 2

    def test_any_of_fires_on_first(self):
        env = Environment()
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(10, value="slow")
        cond = AnyOf(env, [t1, t2])
        env.run(until=cond)
        assert env.now == 1
        assert cond.value == {t1: "fast"}

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        cond = AllOf(env, [])
        assert cond.triggered and cond.value == {}

    def test_all_of_propagates_failure(self):
        env = Environment()
        good = env.timeout(5)
        bad = env.event()
        cond = AllOf(env, [good, bad])
        bad.fail(RuntimeError("dead"))
        with pytest.raises(RuntimeError):
            env.run(until=cond)

    def test_condition_via_env_helpers(self):
        env = Environment()
        c = env.any_of([env.timeout(1), env.timeout(2)])
        env.run(until=c)
        assert env.now == 1
        c2 = env.all_of([env.timeout(1)])
        env.run(until=c2)
        assert env.now == 2


class TestChannel:
    def test_put_then_get(self):
        env = Environment()
        ch = Channel(env)
        ch.put("m1")
        got = []

        def consumer(env):
            v = yield ch.get()
            got.append(v)

        env.process(consumer(env))
        env.run()
        assert got == ["m1"]

    def test_get_blocks_until_put(self):
        env = Environment()
        ch = Channel(env)
        got = []

        def consumer(env):
            v = yield ch.get()
            got.append((env.now, v))

        def producer(env):
            yield env.timeout(4)
            ch.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        ch = Channel(env)
        for i in range(5):
            ch.put(i)
        got = []

        def consumer(env):
            while len(got) < 5:
                got.append((yield ch.get()))

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self):
        env = Environment()
        ch = Channel(env)
        with pytest.raises(LookupError):
            ch.try_get()
        ch.put("x")
        assert ch.try_get() == "x"

    def test_len(self):
        env = Environment()
        ch = Channel(env)
        assert len(ch) == 0
        ch.put(1)
        ch.put(2)
        assert len(ch) == 2

    def test_close_fails_waiting_getters(self):
        env = Environment()
        ch = Channel(env)
        caught = []

        def consumer(env):
            try:
                yield ch.get()
            except ChannelClosed:
                caught.append(True)

        env.process(consumer(env))

        def closer(env):
            yield env.timeout(1)
            ch.close()

        env.process(closer(env))
        env.run()
        assert caught == [True]

    def test_put_after_close_rejected(self):
        env = Environment()
        ch = Channel(env)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.put(1)

    def test_close_idempotent(self):
        env = Environment()
        ch = Channel(env)
        ch.close()
        ch.close()
        assert ch.closed
