"""Tests for WS-Notification: topics, subscribe/notify, broker fan-out."""

import pytest

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsn import (
    CONCRETE_DIALECT,
    FULL_DIALECT,
    SIMPLE_DIALECT,
    NotificationConsumerPortType,
    NotificationListener,
    NotificationProducerPortType,
    SubscriptionManagerPortType,
    TopicExpression,
    TopicExpressionError,
    attach_notification_producer,
    build_notify_body,
    parse_notify_body,
)
from repro.wsn.broker import deploy_broker
from repro.wsrf import (
    GetResourcePropertyPortType,
    ImmediateResourceTerminationPortType,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG


class TestTopicExpressions:
    def test_simple_matches_subtree(self):
        expr = TopicExpression("jobset-1", SIMPLE_DIALECT)
        assert expr.matches("jobset-1")
        assert expr.matches("jobset-1/job2/status")
        assert not expr.matches("jobset-2/job1")

    def test_concrete_exact(self):
        expr = TopicExpression("jobset-1/job2", CONCRETE_DIALECT)
        assert expr.matches("jobset-1/job2")
        assert not expr.matches("jobset-1/job2/status")
        assert not expr.matches("jobset-1")

    def test_full_single_wildcard(self):
        expr = TopicExpression("jobset-1/*/status", FULL_DIALECT)
        assert expr.matches("jobset-1/job9/status")
        assert not expr.matches("jobset-1/status")
        assert not expr.matches("jobset-1/a/b/status")

    def test_full_double_wildcard(self):
        expr = TopicExpression("jobset-1/**", FULL_DIALECT)
        assert expr.matches("jobset-1")
        assert expr.matches("jobset-1/a/b/c")
        assert not expr.matches("other")
        mid = TopicExpression("a/**/z", FULL_DIALECT)
        assert mid.matches("a/z")
        assert mid.matches("a/b/c/z")
        assert not mid.matches("a/b/c")

    def test_simple_rejects_paths(self):
        with pytest.raises(TopicExpressionError):
            TopicExpression("a/b", SIMPLE_DIALECT)

    def test_wildcards_require_full(self):
        with pytest.raises(TopicExpressionError):
            TopicExpression("a/*", CONCRETE_DIALECT)

    def test_unknown_dialect(self):
        with pytest.raises(TopicExpressionError):
            TopicExpression("a", "urn:bogus")

    def test_empty_rejected(self):
        with pytest.raises(TopicExpressionError):
            TopicExpression("   ")

    def test_equality_hash(self):
        a = TopicExpression("x/y")
        b = TopicExpression("x/y")
        assert a == b and hash(a) == hash(b)
        assert a != TopicExpression("x/z")
        assert a != TopicExpression("x", SIMPLE_DIALECT)

    def test_notify_body_roundtrip(self):
        from repro.wsa import EndpointReference

        payload = Element(QName(UVA, "JobExited"), text="0")
        producer = EndpointReference("http://n/ES")
        body = build_notify_body("js/job1/exit", payload, producer)
        from repro.xmlx import parse, to_string

        parsed = parse_notify_body(parse(to_string(body)))
        assert len(parsed) == 1
        topic, message, prod = parsed[0]
        assert topic == "js/job1/exit"
        assert message.tag == QName(UVA, "JobExited")
        assert prod == producer


@WSRFPortType(
    NotificationProducerPortType,
    SubscriptionManagerPortType,
    ImmediateResourceTerminationPortType,
    GetResourcePropertyPortType,
)
class ChattyService(ServiceSkeleton):
    """A producer service that publishes on demand."""

    @WebMethod(requires_resource=False)
    def Emit(self, topic: str, text: str) -> int:
        payload = Element(QName(UVA, "Event"), text=text)
        self.notify(topic, payload)
        return 0


@WSRFPortType(NotificationConsumerPortType)
class SinkService(ServiceSkeleton):
    """A service-side notification consumer."""

    log = []

    def on_notification(self, topic, payload, producer):
        SinkService.log.append((self.env.now, topic, payload.full_text()))


@pytest.fixture()
def fabric():
    env = Environment()
    net = Network(env)
    producer_machine = Machine(net, "producer-node")
    wrapper = deploy(ChattyService, producer_machine, "Chatty")
    attach_notification_producer(wrapper)
    net.add_host("client")
    client = WsrfClient(net, "client")
    SinkService.log = []
    return env, net, producer_machine, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestSubscribeNotify:
    def test_client_listener_receives_matching_topic(self, fabric):
        env, net, pm, wrapper, client = fabric
        listener = NotificationListener(net, "client")
        seen = []
        listener.on_topic("js-1/**", lambda note: seen.append(note.topic))
        run(
            env,
            client.subscribe(wrapper.service_epr(), listener.epr, "js-1/status"),
        )
        run(env, client.call(wrapper.service_epr(), UVA, "Emit",
                             {"topic": "js-1/status", "text": "go"}))
        env.run()  # drain async notify
        assert [n.topic for n in listener.received] == ["js-1/status"]
        assert seen == ["js-1/status"]
        assert listener.received[0].payload.full_text() == "go"
        assert listener.received[0].producer == wrapper.service_epr()

    def test_non_matching_topic_not_delivered(self, fabric):
        env, net, pm, wrapper, client = fabric
        listener = NotificationListener(net, "client")
        run(env, client.subscribe(wrapper.service_epr(), listener.epr, "js-1/status"))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit",
                             {"topic": "js-2/status", "text": "x"}))
        env.run()
        assert listener.received == []

    def test_wildcard_subscription(self, fabric):
        env, net, pm, wrapper, client = fabric
        listener = NotificationListener(net, "client")
        run(
            env,
            client.subscribe(
                wrapper.service_epr(), listener.epr, "js-1/**", dialect=FULL_DIALECT
            ),
        )
        for topic in ("js-1/a", "js-1/b/c", "js-2/a"):
            run(env, client.call(wrapper.service_epr(), UVA, "Emit",
                                 {"topic": topic, "text": "t"}))
        env.run()
        assert listener.topics_seen() == ["js-1/a", "js-1/b/c"]

    def test_pause_and_resume(self, fabric):
        env, net, pm, wrapper, client = fabric
        listener = NotificationListener(net, "client")
        sub_epr = run(
            env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x")
        )
        from repro.wsn.base_notification import PAUSE_SUBSCRIPTION, RESUME_SUBSCRIPTION

        run(env, client.invoke(sub_epr, Element(PAUSE_SUBSCRIPTION)))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit", {"topic": "t/x", "text": "1"}))
        env.run()
        assert listener.received == []
        run(env, client.invoke(sub_epr, Element(RESUME_SUBSCRIPTION)))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit", {"topic": "t/x", "text": "2"}))
        env.run()
        assert [n.payload.full_text() for n in listener.received] == ["2"]

    def test_destroy_subscription_stops_delivery(self, fabric):
        env, net, pm, wrapper, client = fabric
        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))
        run(env, client.destroy(sub_epr))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit", {"topic": "t/x", "text": "1"}))
        env.run()
        assert listener.received == []
        producer = wrapper.notification_producer
        assert producer.subscriptions == {}

    def test_multiple_subscribers_fanout(self, fabric):
        env, net, pm, wrapper, client = fabric
        listeners = []
        for i in range(5):
            net.add_host(f"watcher{i}")
            listener = NotificationListener(net, f"watcher{i}")
            listeners.append(listener)
            run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit", {"topic": "t/x", "text": "all"}))
        env.run()
        assert all(len(l.received) == 1 for l in listeners)
        assert wrapper.notification_producer.notifications_sent == 5

    def test_publish_without_producer_raises(self, fabric):
        env, net, pm, wrapper, client = fabric
        machine2 = Machine(net, "other-node")
        bare = deploy(ChattyService, machine2, "Bare")
        with pytest.raises(SoapFaultLike := Exception, match="NotificationProducer"):
            run(env, client.call(bare.service_epr(), UVA, "Emit", {"topic": "t", "text": "x"}))

    def test_service_side_consumer(self, fabric):
        env, net, pm, wrapper, client = fabric
        sink_machine = Machine(net, "sink-node")
        sink = deploy(SinkService, sink_machine, "Sink")
        run(env, client.subscribe(wrapper.service_epr(), sink.service_epr(), "t/x"))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit", {"topic": "t/x", "text": "svc"}))
        env.run()
        assert len(SinkService.log) == 1
        assert SinkService.log[0][1] == "t/x"
        assert SinkService.log[0][2] == "svc"


class TestBroker:
    def test_broker_multicast(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        # Two listeners subscribe at the broker.
        listeners = []
        for i in range(3):
            net.add_host(f"sub{i}")
            listener = NotificationListener(net, f"sub{i}")
            listeners.append(listener)
            run(env, client.subscribe(broker.service_epr(), listener.epr, "js-7/**",
                                      dialect=FULL_DIALECT))
        # A producer (here: the client itself) sends one Notify to the broker.
        payload = Element(QName(UVA, "JobStarted"), text="job1")
        body = build_notify_body("js-7/job1/started", payload)
        run(env, client.invoke(broker.service_epr(), body, category="notify"))
        env.run()
        for listener in listeners:
            assert listener.topics_seen() == ["js-7/job1/started"]

    def test_register_publisher(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        from repro.wsn.broker import REGISTER_PUBLISHER

        body = Element(REGISTER_PUBLISHER)
        body.append(wrapper.service_epr().to_xml(QName(NS.WSBN, "PublisherReference")))
        run(env, client.invoke(broker.service_epr(), body))
        assert broker.registered_publishers == [wrapper.service_epr()]
        # Idempotent.
        run(env, client.invoke(broker.service_epr(), body))
        assert len(broker.registered_publishers) == 1

    def test_broker_ping(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        assert run(env, client.call(broker.service_epr(), NS.WSBN, "Ping")) == "broker-alive"

    def test_broker_decouples_producer_from_consumers(self, fabric):
        """Producer sends ONE message regardless of subscriber count."""
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        for i in range(10):
            net.add_host(f"c{i}")
            listener = NotificationListener(net, f"c{i}")
            run(env, client.subscribe(broker.service_epr(), listener.epr, "t/**",
                                      dialect=FULL_DIALECT))
        net.stats.reset()
        payload = Element(QName(UVA, "E"), text="1")
        run(env, client.invoke(broker.service_epr(), build_notify_body("t/e", payload),
                               category="producer-notify"))
        env.run()
        assert net.stats.by_category["producer-notify"] == 2  # request+response only
        assert net.stats.by_category["notify"] == 10  # broker fan-out


class TestTopicAdvertisement:
    """The wstop:Topic RP — the producer's published topic space."""

    def test_topics_advertised_after_publish(self, fabric):
        env, net, pm, wrapper, client = fabric
        from repro.wsn.base_notification import TOPIC_RP

        # A subscription resource gives us an EPR to query RPs against.
        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit",
                             {"topic": "t/x", "text": "1"}))
        run(env, client.call(wrapper.service_epr(), UVA, "Emit",
                             {"topic": "t/y", "text": "2"}))
        env.run()
        topics = run(env, client.get_resource_property(sub_epr, TOPIC_RP))
        assert topics == ["t/x", "t/y"]

    def test_no_publishes_empty_advertisement(self, fabric):
        env, net, pm, wrapper, client = fabric
        from repro.wsn.base_notification import TOPIC_RP

        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))
        assert run(env, client.get_resource_property(sub_epr, TOPIC_RP)) == []


class TestDemandPublishing:
    """WS-BrokeredNotification demand-based publishing."""

    def _demand_setup(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)

        # A publisher service that honors Pause/ResumePublishing.
        from repro.wsn.broker import DemandPublisherPortType

        @WSRFPortType(DemandPublisherPortType)
        class Sensor(ServiceSkeleton):
            @WebMethod(requires_resource=False)
            def IsPublishing(self, root: str) -> bool:
                paused = getattr(self.wsrf.wrapper, "publishing_paused", set())
                return root not in paused

        sensor_machine = Machine(net, "sensor-node")
        sensor = deploy(Sensor, sensor_machine, "Sensor")

        # Register the sensor as a demand publisher for topic root "env".
        from repro.wsn.broker import REGISTER_PUBLISHER

        body = Element(REGISTER_PUBLISHER)
        body.append(sensor.service_epr().to_xml(QName(NS.WSBN, "PublisherReference")))
        body.subelement(QName(NS.WSBN, "Demand"), text="true")
        body.subelement(QName(NS.WSBN, "Topic"), text="env")
        run(env, client.invoke(broker.service_epr(), body))
        env.run(until=env.now + 1.0)
        return env, net, broker, sensor, client

    def _is_publishing(self, env, client, sensor):
        return run(env, client.call(sensor.service_epr(), UVA, "IsPublishing",
                                    {"root": "env"}))

    def test_paused_until_first_subscriber(self, fabric):
        env, net, broker, sensor, client = self._demand_setup(fabric)
        # No subscriber interest yet: the broker told the sensor to pause.
        assert self._is_publishing(env, client, sensor) is False
        # A matching subscription appears -> resume.
        listener = NotificationListener(net, "client")
        run(env, client.subscribe(broker.service_epr(), listener.epr, "env/**",
                                  dialect=FULL_DIALECT))
        env.run(until=env.now + 1.0)
        assert self._is_publishing(env, client, sensor) is True

    def test_pause_returns_when_interest_vanishes(self, fabric):
        env, net, broker, sensor, client = self._demand_setup(fabric)
        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(broker.service_epr(), listener.epr,
                                            "env/**", dialect=FULL_DIALECT))
        env.run(until=env.now + 1.0)
        assert self._is_publishing(env, client, sensor) is True
        run(env, client.destroy(sub_epr))
        env.run(until=env.now + 1.0)
        assert self._is_publishing(env, client, sensor) is False

    def test_unrelated_subscription_does_not_resume(self, fabric):
        env, net, broker, sensor, client = self._demand_setup(fabric)
        listener = NotificationListener(net, "client")
        run(env, client.subscribe(broker.service_epr(), listener.epr,
                                  "othertopic/**", dialect=FULL_DIALECT))
        env.run(until=env.now + 1.0)
        assert self._is_publishing(env, client, sensor) is False

    def test_pausing_last_subscription_pauses_publisher(self, fabric):
        env, net, broker, sensor, client = self._demand_setup(fabric)
        from repro.wsn.base_notification import PAUSE_SUBSCRIPTION

        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(broker.service_epr(), listener.epr,
                                            "env/**", dialect=FULL_DIALECT))
        env.run(until=env.now + 1.0)
        run(env, client.invoke(sub_epr, Element(PAUSE_SUBSCRIPTION)))
        env.run(until=env.now + 1.0)
        assert self._is_publishing(env, client, sensor) is False

    def test_demand_signals_obey_write_ahead_order(self, fabric, monkeypatch):
        """Demand-control Pause/Resume rides the dispatch outbox (WAL002).

        The one-way signal must leave the broker only after the dispatch
        that changed the subscription state has persisted it — never
        mid-method, where a crash would have announced state that was
        about to be rolled back.
        """
        import repro.wsn.base_notification as base_notification

        env, net, broker, sensor, client = self._demand_setup(fabric)
        from repro.wsn.base_notification import PAUSE_SUBSCRIPTION

        listener = NotificationListener(net, "client")
        sub_epr = run(env, client.subscribe(broker.service_epr(), listener.epr,
                                            "env/**", dialect=FULL_DIALECT))
        env.run(until=env.now + 1.0)

        order = []
        real_save = broker.store.save
        real_send = base_notification.fire_and_forget

        def spy_save(service, rid, state):
            order.append(("save", rid))
            return real_save(service, rid, state)

        def spy_send(env_, client_, epr, body, category="notify", **kwargs):
            order.append(("send", category))
            return real_send(env_, client_, epr, body, category=category, **kwargs)

        monkeypatch.setattr(broker.store, "save", spy_save)
        monkeypatch.setattr(base_notification, "fire_and_forget", spy_send)

        # Pausing the only matching subscription flips demand -> Pause.
        run(env, client.invoke(sub_epr, Element(PAUSE_SUBSCRIPTION)))
        env.run(until=env.now + 1.0)

        sends = [i for i, (kind, tag) in enumerate(order)
                 if kind == "send" and tag == "demand-control"]
        saves = [i for i, (kind, _) in enumerate(order) if kind == "save"]
        assert sends, f"no demand-control send recorded: {order}"
        assert saves, f"no broker store save recorded: {order}"
        assert min(sends) > max(saves), (
            f"demand-control send left before the dispatch persisted the "
            f"subscription change: {order}"
        )
        assert self._is_publishing(env, client, sensor) is False


class TestBrokerRedelivery:
    """Bounded notification redelivery, then dropping the subscriber."""

    def _policy(self, attempts=3):
        from repro.net import RetryPolicy

        return RetryPolicy(
            max_attempts=attempts, base_delay_s=1.0, backoff_factor=2.0,
            max_delay_s=8.0, jitter=0.0,
        )

    def _broker_with_listener(self, env, net, client, policy):
        from repro.wsn.broker import enable_redelivery

        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        enable_redelivery(broker, policy)
        net.add_host("watcher")
        listener = NotificationListener(net, "watcher")
        sub_epr = run(
            env, client.subscribe(broker.service_epr(), listener.epr, "t/**",
                                  dialect=FULL_DIALECT)
        )
        return broker, listener, sub_epr

    def _notify(self, env, client, broker, text):
        payload = Element(QName(UVA, "E"), text=text)
        run(env, client.invoke(
            broker.service_epr(), build_notify_body("t/e", payload),
            category="producer-notify",
        ))

    def test_transient_outage_is_redelivered(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker, listener, sub_epr = self._broker_with_listener(
            env, net, client, self._policy(attempts=4)
        )
        net.host("watcher").down = True

        def heal(env):
            yield env.timeout(2.5)  # back up before attempts run out
            net.host("watcher").down = False

        env.process(heal(env))
        self._notify(env, client, broker, "eventually")
        env.run()
        assert [n.payload.full_text() for n in listener.received] == ["eventually"]
        producer = broker.notification_producer
        assert producer.redeliveries >= 1
        assert net.stats.redeliveries == producer.redeliveries
        assert producer.dropped_subscribers == []
        assert len(producer.subscriptions) == 1

    def test_exhaustion_drops_the_subscriber(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker, listener, sub_epr = self._broker_with_listener(
            env, net, client, self._policy(attempts=3)
        )
        net.host("watcher").down = True
        self._notify(env, client, broker, "never")
        env.run()
        producer = broker.notification_producer
        assert listener.received == []
        assert len(producer.dropped_subscribers) == 1
        assert producer.subscriptions == {}
        # Later publishes have no one to go to; no error either.
        net.host("watcher").down = False
        self._notify(env, client, broker, "late")
        env.run()
        assert listener.received == []

    def test_dropped_subscribers_resource_property(self, fabric):
        env, net, pm, wrapper, client = fabric
        broker, listener, sub_epr = self._broker_with_listener(
            env, net, client, self._policy(attempts=2)
        )
        # RPs are served in the context of a WS-Resource; the
        # subscription itself is the natural one to ask.
        assert run(env, client.get_resource_property(
            sub_epr, QName(NS.WSBN, "DroppedSubscribers")
        )) == 0
        net.host("watcher").down = True
        self._notify(env, client, broker, "x")
        env.run()
        # The subscription was destroyed with its consumer; ask a fresh
        # subscription's resource for the broker-wide count.
        net.add_host("watcher2")
        listener2 = NotificationListener(net, "watcher2")
        sub2 = run(env, client.subscribe(
            broker.service_epr(), listener2.epr, "t/**", dialect=FULL_DIALECT
        ))
        assert run(env, client.get_resource_property(
            sub2, QName(NS.WSBN, "DroppedSubscribers")
        )) == 1

    def test_without_policy_loss_is_silent_and_subscription_kept(self, fabric):
        """Seed semantics (§4.1 one-way loss) are untouched by default."""
        env, net, pm, wrapper, client = fabric
        broker_machine = Machine(net, "broker-node")
        broker = deploy_broker(broker_machine)
        net.add_host("watcher")
        listener = NotificationListener(net, "watcher")
        run(env, client.subscribe(broker.service_epr(), listener.epr, "t/**",
                                  dialect=FULL_DIALECT))
        net.host("watcher").down = True
        payload = Element(QName(UVA, "E"), text="gone")
        run(env, client.invoke(
            broker.service_epr(), build_notify_body("t/e", payload),
            category="producer-notify",
        ))
        env.run()
        producer = broker.notification_producer
        assert listener.received == []
        assert producer.dropped_subscribers == []
        assert len(producer.subscriptions) == 1


class TestPublishBodyIsolation:
    """Regression: publish() used to share one mutable Notify body."""

    def test_mutation_after_publish_does_not_alias_into_sends(self, fabric, monkeypatch):
        env, net, pm, wrapper, client = fabric
        listeners = []
        for i in range(2):
            net.add_host(f"iso{i}")
            listener = NotificationListener(net, f"iso{i}")
            listeners.append(listener)
            run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))

        # Capture the internal Notify body publish() builds, so we can
        # mutate it after publish() returns (the detached one-way sends
        # serialize later — a shared tree would leak the mutation).
        import repro.wsn.base_notification as bn

        captured = []
        original = bn.build_notify_body

        def capturing(topic_path, payload, producer_epr=None):
            body = original(topic_path, payload, producer_epr)
            captured.append(body)
            return body

        monkeypatch.setattr(bn, "build_notify_body", capturing)
        producer = wrapper.notification_producer
        payload = Element(QName(UVA, "Event"), text="original")
        sent = producer.publish("t/x", payload)
        assert sent == 2 and len(captured) == 1

        # Corrupt the shared tree before the detached sends serialize.
        for el in captured[0].iter():
            el.text = "corrupted"
        env.run()
        texts = [listener.received[0].payload.full_text() for listener in listeners]
        assert texts == ["original", "original"]

    def test_mutation_does_not_alias_into_redeliveries(self, fabric, monkeypatch):
        from repro.net.retry import RetryPolicy
        from repro.wsn.broker import enable_redelivery

        env, net, pm, wrapper, client = fabric
        net.add_host("red0")
        listener = NotificationListener(net, "red0")
        run(env, client.subscribe(wrapper.service_epr(), listener.epr, "t/x"))
        enable_redelivery(
            wrapper, RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
        )
        # First delivery attempt fails (host down) → redelivery path keeps
        # the body pending across simulated time.
        net.host("red0").down = True

        import repro.wsn.base_notification as bn

        captured = []
        original = bn.build_notify_body

        def capturing(topic_path, payload, producer_epr=None):
            body = original(topic_path, payload, producer_epr)
            captured.append(body)
            return body

        monkeypatch.setattr(bn, "build_notify_body", capturing)
        producer = wrapper.notification_producer
        producer.publish("t/x", Element(QName(UVA, "Event"), text="original"))
        for el in captured[0].iter():
            el.text = "corrupted"
        env.run(until=env.now + 0.05)
        net.host("red0").down = False  # recover before budget exhausts
        env.run()
        assert [n.payload.full_text() for n in listener.received] == ["original"]
        assert producer.redeliveries >= 1


class TestTopicsCapSignal:
    """Regression: the topics_seen cap used to truncate silently."""

    def test_truncation_is_flagged_and_counted(self, fabric):
        env, net, pm, wrapper, client = fabric
        producer = wrapper.notification_producer
        producer._topics_cap = 3
        for i in range(5):
            producer.publish(f"t/{i}", Element(QName(UVA, "E"), text="x"))
        assert len(producer.topics_seen) == 3
        assert producer.topics_truncated is True
        assert producer.topics_dropped == 2

    def test_republishing_known_topic_not_counted_as_dropped(self, fabric):
        env, net, pm, wrapper, client = fabric
        producer = wrapper.notification_producer
        producer._topics_cap = 1
        producer.publish("t/a", Element(QName(UVA, "E"), text="x"))
        producer.publish("t/a", Element(QName(UVA, "E"), text="y"))
        assert producer.topics_truncated is False
        assert producer.topics_dropped == 0
        producer.publish("t/b", Element(QName(UVA, "E"), text="z"))
        producer.publish("t/b", Element(QName(UVA, "E"), text="z"))
        assert producer.topics_truncated is True
        # the same unseen topic republished counts each time: the signal
        # tracks how often advertisement was wrong, not distinct names
        assert producer.topics_dropped == 2
