"""Unit tests for the gridapp building blocks (specs, tracing, policy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gridapp.execution_service import _job_event, parse_job_event
from repro.gridapp.jobset import (
    FileRef,
    JobSetSpec,
    JobSetValidationError,
    JobSpec,
)
from repro.gridapp.node_info import parse_processor_content, processor_content
from repro.gridapp.scheduler import SchedulingFault, choose_machine
from repro.gridapp.tracing import EventTrace
from repro.sim import Environment
from repro.wsa import EndpointReference


def _job(name, deps=(), extra_inputs=()):
    inputs = [FileRef(f"{dep}://out", f"{dep}.dat") for dep in deps]
    inputs += list(extra_inputs)
    return JobSpec(
        name=name,
        executable=FileRef("local://c:/exe", "job.exe"),
        inputs=inputs,
        outputs=["out"],
    )


class TestFileRef:
    def test_local_scheme_no_dependency(self):
        ref = FileRef("local://c:\\file1", "input1")
        assert ref.scheme() == "local"
        assert ref.depends_on({"job1": "job1"}) is None

    def test_job_reference_case_insensitive(self):
        ref = FileRef("AlignA://output2", "in.dat")
        assert ref.depends_on({"aligna": "alignA"}) == "alignA"

    def test_unknown_job_reference(self):
        ref = FileRef("ghost://f", "in")
        assert ref.depends_on({"job1": "job1"}) is None

    def test_wire_roundtrip(self):
        ref = FileRef("job1://output2", "input.dat")
        assert FileRef.from_wire(ref.to_wire()) == ref


class TestJobSetValidation:
    def test_valid_dag(self):
        spec = JobSetSpec()
        spec.add(_job("a"))
        spec.add(_job("b", deps=["a"]))
        spec.add(_job("c", deps=["a", "b"]))
        spec.validate()
        assert spec.topological_order() == ["a", "b", "c"]

    def test_empty_rejected(self):
        with pytest.raises(JobSetValidationError, match="empty"):
            JobSetSpec().validate()

    def test_duplicate_names_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("a"))
        spec.add(_job("a"))
        with pytest.raises(JobSetValidationError, match="duplicate"):
            spec.validate()

    def test_case_colliding_names_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("Task"))
        spec.add(_job("task"))
        with pytest.raises(JobSetValidationError, match="case-insensitively"):
            spec.validate()

    def test_reserved_name_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("local"))
        with pytest.raises(JobSetValidationError, match="reserved"):
            spec.validate()

    def test_unknown_reference_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("a", deps=["ghost"]))
        with pytest.raises(JobSetValidationError, match="ghost"):
            spec.validate()

    def test_self_dependency_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("a", deps=["a"]))
        with pytest.raises(JobSetValidationError, match="itself"):
            spec.validate()

    def test_cycle_rejected(self):
        spec = JobSetSpec()
        spec.add(_job("a", deps=["b"]))
        spec.add(_job("b", deps=["a"]))
        with pytest.raises(JobSetValidationError, match="cycle"):
            spec.validate()

    def test_wire_roundtrip_preserves_structure(self):
        spec = JobSetSpec()
        spec.add(_job("a"))
        spec.add(_job("b", deps=["a"]))
        again = JobSetSpec.from_wire(spec.to_wire())
        assert [j.name for j in again.jobs] == ["a", "b"]
        assert again.jobs[1].dependencies(again.name_map()) == ["a"]

    def test_job_lookup(self):
        spec = JobSetSpec()
        job = spec.add(_job("a"))
        assert spec.job("a") is job
        with pytest.raises(KeyError):
            spec.job("zzz")

    @given(
        st.lists(
            st.integers(min_value=0, max_value=11), min_size=1, max_size=12, unique=True
        ).flatmap(
            lambda ids: st.tuples(
                st.just(ids),
                st.lists(
                    st.tuples(
                        st.sampled_from(ids), st.sampled_from(ids)
                    ).filter(lambda e: e[0] < e[1]),
                    max_size=20,
                ),
            )
        )
    )
    def test_topological_order_property(self, ids_edges):
        """For random DAGs (edges always low->high id), every dependency
        precedes its dependent in the computed order."""
        ids, edges = ids_edges
        spec = JobSetSpec()
        deps_of = {i: sorted({a for a, b in edges if b == i and a in ids}) for i in ids}
        for i in ids:
            spec.add(_job(f"j{i}", deps=[f"j{d}" for d in deps_of[i]]))
        order = spec.topological_order()
        position = {name: k for k, name in enumerate(order)}
        assert sorted(position) == sorted(f"j{i}" for i in ids)
        for i in ids:
            for d in deps_of[i]:
                assert position[f"j{d}"] < position[f"j{i}"]


class TestJobEvents:
    def test_roundtrip_full(self):
        epr = EndpointReference("http://n/ES", {"id": "1"})
        dir_epr = EndpointReference("http://n/FS", {"id": "2"})
        event = _job_event("JobExited", "job1", exit_code=3, job_epr=epr,
                           dir_epr=dir_epr, detail="boom")
        parsed = parse_job_event(event)
        assert parsed == {
            "kind": "JobExited",
            "job_name": "job1",
            "exit_code": 3,
            "job_epr": epr,
            "dir_epr": dir_epr,
            "detail": "boom",
        }

    def test_minimal_event(self):
        parsed = parse_job_event(_job_event("JobCreated", "j"))
        assert parsed == {"kind": "JobCreated", "job_name": "j"}


class TestProcessorContent:
    def test_roundtrip(self):
        el = processor_content("node03", 2.5, 512, 0.75, 42.5)
        info = parse_processor_content(el)
        assert info == {
            "name": "node03",
            "cpu_speed": 2.5,
            "ram_mb": 512,
            "utilization": 0.75,
            "updated_at": 42.5,
        }

    def test_defaults_on_sparse_content(self):
        from repro.xmlx import Element, QName, NS

        info = parse_processor_content(Element(QName(NS.UVACG, "ProcessorInfo")))
        assert info["cpu_speed"] == 1.0 and info["utilization"] == 0.0


def _proc(name, speed, util, queued=None):
    out = {"name": name, "cpu_speed": speed, "ram_mb": 512,
           "utilization": util, "updated_at": 0.0}
    if queued is not None:
        out["queued"] = queued
    return out


class TestChooseMachine:
    def test_best_prefers_fast_idle(self):
        procs = [_proc("a", 1.0, 0.0), _proc("b", 2.0, 0.0), _proc("c", 2.0, 0.9)]
        assert choose_machine(procs, "best")["name"] == "b"

    def test_best_accounts_for_queue_depth(self):
        procs = [_proc("a", 1.0, 0.0, queued=0), _proc("b", 3.0, 0.0, queued=4)]
        assert choose_machine(procs, "best")["name"] == "a"

    def test_best_queue_matters_on_busy_machines(self):
        procs = [_proc("a", 1.0, 1.0, queued=3), _proc("b", 1.0, 1.0, queued=1)]
        assert choose_machine(procs, "best")["name"] == "b"

    def test_best_deterministic_tiebreak(self):
        procs = [_proc("a", 1.0, 0.0), _proc("b", 1.0, 0.0)]
        assert choose_machine(procs, "best")["name"] == "b"  # max name

    def test_roundrobin_cycles(self):
        procs = [_proc("a", 1.0, 0.0), _proc("b", 1.0, 0.0)]
        state = {"next": 0}
        picks = [choose_machine(procs, "roundrobin", rr_state=state)["name"]
                 for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_random_needs_rng(self):
        with pytest.raises(SchedulingFault, match="RNG"):
            choose_machine([_proc("a", 1, 0)], "random")

    def test_random_seeded(self):
        import numpy as np

        procs = [_proc(f"m{i}", 1.0, 0.0) for i in range(5)]
        a = [choose_machine(procs, "random", rng=np.random.default_rng(1))["name"]
             for _ in range(1)]
        b = [choose_machine(procs, "random", rng=np.random.default_rng(1))["name"]
             for _ in range(1)]
        assert a == b

    def test_empty_catalog_faults(self):
        with pytest.raises(SchedulingFault, match="no processors"):
            choose_machine([], "best")

    def test_unknown_policy_faults(self):
        with pytest.raises(SchedulingFault, match="unknown scheduling policy"):
            choose_machine([_proc("a", 1, 0)], "optimal")


class TestEventTrace:
    def test_record_and_query(self):
        env = Environment()
        trace = EventTrace(env)
        trace.record(1, "client", "submit")
        env._now = 5.0
        trace.record(3, "scheduler")
        trace.record(1, "client", "again")
        assert trace.steps() == [1, 3, 1]
        assert trace.first_occurrence_order() == [1, 3]
        assert len(trace.events_for_step(1)) == 2
        assert "step  3" in trace.format()
        trace.clear()
        assert trace.steps() == []
