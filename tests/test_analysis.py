"""Tests for wsrfcheck (``repro.analysis``).

Three layers: unit tests of the contract model, per-rule tests over the
seeded-violation fixtures in ``tests/analysis_fixtures/``, and the
meta-tests gating CI — the shipped baseline must stay empty for the
tier-1-critical rules and the real source tree must analyze clean.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths, build_model, load_baseline, rule_catalog
from repro.analysis.engine import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"
GOLDEN = REPO_ROOT / "tests" / "analysis_golden.json"
BASELINE = REPO_ROOT / "wsrfcheck-baseline.json"

#: rules whose baseline must be empty for tier-1 correctness
CRITICAL_RULES = ("WSRF001", "WSRF002", "WSRF003", "DET001", "WAL001")


def analyze_fixtures(rules=None):
    return analyze_paths([str(FIXTURES)], rules=rules, root=REPO_ROOT)


# -- contract model -----------------------------------------------------------------


class TestContractModel:
    def _model(self, source, module="fixture", path="fixture.py"):
        return build_model([(module, path, ast.parse(source))])

    def test_web_method_signature_extraction(self):
        model = self._model(
            """
from repro.xmlx import NS

class S(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    @WebMethod(one_way=True)
    def Go(self, a, b=1, *, c, d=2):
        pass
"""
        )
        method = model.web_method("NS.UVACG", "Go")
        assert method is not None
        assert method.one_way is True
        assert set(method.params) == {"a", "b", "c", "d"}
        assert method.required == {"a", "c"}

    def test_service_ns_inherited_through_bases(self):
        model = self._model(
            """
from repro.xmlx import NS

class Base(ServiceSkeleton):
    SERVICE_NS = NS.WSRF_SG

    @WebMethod
    def Op(self):
        pass

class Child(Base):
    pass
"""
        )
        assert model.effective_ns("Child") == "NS.WSRF_SG"
        assert model.web_method("NS.WSRF_SG", "Op") is not None

    def test_default_namespace_is_uvacg(self):
        model = self._model(
            """
class S(ServiceSkeleton):
    @WebMethod
    def Op(self):
        pass
"""
        )
        assert model.effective_ns("S") == "NS.UVACG"

    def test_fault_closure_is_transitive(self):
        model = self._model(
            """
class A(BaseFault):
    pass

class B(A):
    pass

class C(Exception):
    pass
"""
        )
        assert "A" in model.fault_classes
        assert "B" in model.fault_classes
        assert "C" not in model.fault_classes

    def test_module_alias_resolution(self):
        model = self._model(
            """
from repro.xmlx import NS

UVA = NS.UVACG

class S(ServiceSkeleton):
    SERVICE_NS = UVA
"""
        )
        assert model.effective_ns("S") == "NS.UVACG"

    def test_real_tree_model_covers_known_services(self):
        report_files = [str(REPO_ROOT / "src" / "repro")]
        from repro.analysis.engine import collect_files, _module_name, _relative

        files = collect_files(report_files)
        modules = []
        for f in files:
            rel = _relative(f, REPO_ROOT)
            modules.append((_module_name(rel), rel, ast.parse(f.read_text())))
        model = build_model(modules)
        assert "ExecutionService" in model.service_classes
        assert "Gt4ExecutionService" in model.service_classes
        assert "AuthenticationFault" in model.fault_classes
        assert model.web_method("NS.UVACG", "Run") is not None
        report = model.web_method("NS.WSRF_SG", "ReportUtilization")
        assert report is not None and report.one_way is True


# -- per-rule fixture tests ---------------------------------------------------------


def findings_for(rule):
    report = analyze_fixtures(rules=[rule])
    return report.findings


class TestRulesFire:
    def test_wsrf001_proxy_drift(self):
        lines = {(f.path.rsplit("/", 1)[-1], f.line) for f in findings_for("WSRF001")}
        assert ("proxy_drift.py", 30) in lines  # unknown method
        assert ("proxy_drift.py", 35) in lines  # unknown argument
        assert ("proxy_drift.py", 40) in lines  # missing required argument
        assert ("proxy_drift.py", 45) in lines  # one-way mismatch

    def test_wsrf001_good_sites_are_clean(self):
        assert not any(
            f.symbol in ("good_call", "good_one_way")
            for f in findings_for("WSRF001")
        )

    def test_wsrf002_rp_access(self):
        symbols = {f.symbol for f in findings_for("WSRF002")}
        assert "PropertyService.Leak" in symbols  # undeclared self.x write
        assert "reads_undeclared_property" in symbols
        assert "reads_undeclared_inline" in symbols
        assert "good_read" not in symbols
        assert "PropertyService.Touch" not in symbols

    def test_wsrf003_untyped_faults(self):
        messages = [f.message for f in findings_for("WSRF003")]
        assert any("ValueError" in m for m in messages)
        assert any("RuntimeError" in m for m in messages)
        # the typed QuotaFault raise is clean
        assert not any("QuotaFault" in m for m in messages)

    def test_wal001_write_ahead_ordering(self):
        findings = findings_for("WAL001")
        symbols = {f.symbol for f in findings}
        # fire_and_forget inside a ServiceSkeleton subclass fires...
        assert "EagerAnnouncer.Finish" in symbols
        # ...the outbox-routed send and module-level helpers are clean.
        assert "EagerAnnouncer.FinishSafely" not in symbols
        assert "relay" not in symbols
        assert all("send_after_persist" in f.message for f in findings)

    def test_wal001_empty_baseline(self):
        """The rule ships at zero findings: nothing baselined, src clean."""
        data = json.loads(BASELINE.read_text())
        assert [e for e in data["findings"] if e["rule"] == "WAL001"] == []
        report = analyze_paths(
            [str(REPO_ROOT / "src" / "repro")], rules=["WAL001"], root=REPO_ROOT
        )
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_det001_nondeterminism(self):
        symbols = {f.symbol for f in findings_for("DET001")}
        assert symbols >= {
            "wall_clock_timestamp",
            "wall_clock_datetime",
            "wall_clock_perf_counter",
            "global_rng_choice",
            "numpy_global_draw",
            "unseeded_generator",
            "schedule_from_set",
        }
        assert "seeded_generator" not in symbols
        assert "schedule_sorted" not in symbols

    def test_det001_timer_allowlist(self):
        """obs/prof.py may read host timers; everything else stays hot."""
        by_file = {}
        for f in findings_for("DET001"):
            by_file.setdefault(f.path.rsplit("/", 1)[-1], set()).add(f.symbol)
        # The allowlisted fixture's timer reads are clean...
        assert "allowed_timer_read" not in by_file.get("prof.py", set())
        assert "allowed_timer_read_ns" not in by_file.get("prof.py", set())
        # ...but the exemption is timers-only: RNG use still fires there...
        assert "still_flagged_rng" in by_file.get("prof.py", set())
        # ...and perf_counter outside the allowlist is still flagged.
        assert "wall_clock_perf_counter" in by_file.get("nondeterminism.py", set())

    def test_det001_suppression_pragma(self):
        report = analyze_fixtures(rules=["DET001"])
        assert report.suppressed == 1
        assert not any(
            f.symbol == "suppressed_wall_clock" for f in report.findings
        )

    def test_sim001_blocking_calls(self):
        symbols = {f.symbol for f in findings_for("SIM001")}
        assert symbols == {"real_sleep", "real_socket", "real_file_read"}

    def test_sim002_unsynchronized_mutation(self):
        symbols = {f.symbol for f in findings_for("SIM002")}
        assert "start_unsafe_sweeper.sweeper" in symbols
        assert "start_unsafe_reaper.reaper" in symbols
        assert not any(s.startswith("start_safe_sweeper") for s in symbols)
        assert "plain_helper_not_a_process" not in symbols


# -- engine behavior ----------------------------------------------------------------


class TestEngine:
    def test_golden_report(self):
        report = analyze_fixtures()
        golden = json.loads(GOLDEN.read_text())
        assert report.to_json() == golden, (
            "fixture findings drifted from tests/analysis_golden.json; "
            "if the change is intended, regenerate with: PYTHONPATH=src "
            "python -m repro.analysis tests/analysis_fixtures --no-baseline "
            "--format json > tests/analysis_golden.json"
        )

    def test_fingerprint_is_line_independent(self):
        a = Finding(rule="R", path="p.py", line=10, message="m", symbol="s")
        b = Finding(rule="R", path="p.py", line=99, message="m", symbol="s")
        c = Finding(rule="R", path="p.py", line=10, message="other", symbol="s")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_baseline_filters_findings(self, tmp_path):
        from repro.analysis.engine import write_baseline

        report = analyze_fixtures()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        rerun = analyze_paths(
            [str(FIXTURES)],
            baseline=load_baseline(baseline_path),
            root=REPO_ROOT,
        )
        assert rerun.findings == []
        assert rerun.baselined == len(report.findings)
        assert rerun.exit_code == 0

    def test_parse_error_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([str(bad)], root=tmp_path)
        assert len(report.parse_errors) == 1
        assert report.exit_code == 1

    def test_cli_json_and_exit_codes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             str(FIXTURES), "--no-baseline", "--format", "json"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_analyzed"] == 9
        clean = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr


# -- CI-gating meta-tests -----------------------------------------------------------


class TestShippedTreeIsClean:
    def test_rule_catalog_is_complete(self):
        assert set(rule_catalog()) == {
            "WSRF001", "WSRF002", "WSRF003", "DET001", "SIM001", "SIM002",
            "WAL001",
        }

    def test_shipped_baseline_has_no_critical_entries(self):
        data = json.loads(BASELINE.read_text())
        critical = [
            e for e in data["findings"] if e["rule"] in CRITICAL_RULES
        ]
        assert critical == [], (
            "tier-1-critical rules must never be baselined; fix the "
            f"underlying issues instead: {critical}"
        )

    def test_src_repro_analyzes_clean_without_baseline(self):
        report = analyze_paths([str(REPO_ROOT / "src" / "repro")], root=REPO_ROOT)
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
