"""Tests for wsrfcheck (``repro.analysis``).

Three layers: unit tests of the contract model, per-rule tests over the
seeded-violation fixtures in ``tests/analysis_fixtures/``, and the
meta-tests gating CI — the shipped baseline must stay empty for the
tier-1-critical rules and the real source tree must analyze clean.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths, build_model, load_baseline, rule_catalog
from repro.analysis.engine import Finding, prune_baseline, write_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"
GOLDEN = REPO_ROOT / "tests" / "analysis_golden.json"
BASELINE = REPO_ROOT / "wsrfcheck-baseline.json"

#: rules whose baseline must be empty for tier-1 correctness
CRITICAL_RULES = (
    "WSRF001", "WSRF002", "WSRF003", "WSRF004",
    "DET001", "WAL001", "WAL002", "LOCK001",
)


def analyze_fixtures(rules=None):
    return analyze_paths([str(FIXTURES)], rules=rules, root=REPO_ROOT)


# -- contract model -----------------------------------------------------------------


class TestContractModel:
    def _model(self, source, module="fixture", path="fixture.py"):
        return build_model([(module, path, ast.parse(source))])

    def test_web_method_signature_extraction(self):
        model = self._model(
            """
from repro.xmlx import NS

class S(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    @WebMethod(one_way=True)
    def Go(self, a, b=1, *, c, d=2):
        pass
"""
        )
        method = model.web_method("NS.UVACG", "Go")
        assert method is not None
        assert method.one_way is True
        assert set(method.params) == {"a", "b", "c", "d"}
        assert method.required == {"a", "c"}

    def test_service_ns_inherited_through_bases(self):
        model = self._model(
            """
from repro.xmlx import NS

class Base(ServiceSkeleton):
    SERVICE_NS = NS.WSRF_SG

    @WebMethod
    def Op(self):
        pass

class Child(Base):
    pass
"""
        )
        assert model.effective_ns("Child") == "NS.WSRF_SG"
        assert model.web_method("NS.WSRF_SG", "Op") is not None

    def test_default_namespace_is_uvacg(self):
        model = self._model(
            """
class S(ServiceSkeleton):
    @WebMethod
    def Op(self):
        pass
"""
        )
        assert model.effective_ns("S") == "NS.UVACG"

    def test_fault_closure_is_transitive(self):
        model = self._model(
            """
class A(BaseFault):
    pass

class B(A):
    pass

class C(Exception):
    pass
"""
        )
        assert "A" in model.fault_classes
        assert "B" in model.fault_classes
        assert "C" not in model.fault_classes

    def test_module_alias_resolution(self):
        model = self._model(
            """
from repro.xmlx import NS

UVA = NS.UVACG

class S(ServiceSkeleton):
    SERVICE_NS = UVA
"""
        )
        assert model.effective_ns("S") == "NS.UVACG"

    def test_real_tree_model_covers_known_services(self):
        report_files = [str(REPO_ROOT / "src" / "repro")]
        from repro.analysis.engine import collect_files, _module_name, _relative

        files = collect_files(report_files)
        modules = []
        for f in files:
            rel = _relative(f, REPO_ROOT)
            modules.append((_module_name(rel), rel, ast.parse(f.read_text())))
        model = build_model(modules)
        assert "ExecutionService" in model.service_classes
        assert "Gt4ExecutionService" in model.service_classes
        assert "AuthenticationFault" in model.fault_classes
        assert model.web_method("NS.UVACG", "Run") is not None
        report = model.web_method("NS.WSRF_SG", "ReportUtilization")
        assert report is not None and report.one_way is True


# -- per-rule fixture tests ---------------------------------------------------------


def findings_for(rule):
    report = analyze_fixtures(rules=[rule])
    return report.findings


class TestRulesFire:
    def test_wsrf001_proxy_drift(self):
        lines = {(f.path.rsplit("/", 1)[-1], f.line) for f in findings_for("WSRF001")}
        assert ("proxy_drift.py", 30) in lines  # unknown method
        assert ("proxy_drift.py", 35) in lines  # unknown argument
        assert ("proxy_drift.py", 40) in lines  # missing required argument
        assert ("proxy_drift.py", 45) in lines  # one-way mismatch

    def test_wsrf001_good_sites_are_clean(self):
        assert not any(
            f.symbol in ("good_call", "good_one_way")
            for f in findings_for("WSRF001")
        )

    def test_wsrf002_rp_access(self):
        symbols = {f.symbol for f in findings_for("WSRF002")}
        assert "PropertyService.Leak" in symbols  # undeclared self.x write
        assert "reads_undeclared_property" in symbols
        assert "reads_undeclared_inline" in symbols
        assert "good_read" not in symbols
        assert "PropertyService.Touch" not in symbols

    def test_wsrf003_untyped_faults(self):
        messages = [f.message for f in findings_for("WSRF003")]
        assert any("ValueError" in m for m in messages)
        assert any("RuntimeError" in m for m in messages)
        # the typed QuotaFault raise is clean
        assert not any("QuotaFault" in m for m in messages)

    def test_wal001_write_ahead_ordering(self):
        findings = findings_for("WAL001")
        symbols = {f.symbol for f in findings}
        # fire_and_forget inside a ServiceSkeleton subclass fires...
        assert "EagerAnnouncer.Finish" in symbols
        # ...the outbox-routed send and module-level helpers are clean.
        assert "EagerAnnouncer.FinishSafely" not in symbols
        assert "relay" not in symbols
        assert all("send_after_persist" in f.message for f in findings)

    def test_wal001_empty_baseline(self):
        """The rule ships at zero findings: nothing baselined, src clean."""
        data = json.loads(BASELINE.read_text())
        assert [e for e in data["findings"] if e["rule"] == "WAL001"] == []
        report = analyze_paths(
            [str(REPO_ROOT / "src" / "repro")], rules=["WAL001"], root=REPO_ROOT
        )
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_det001_nondeterminism(self):
        symbols = {f.symbol for f in findings_for("DET001")}
        assert symbols >= {
            "wall_clock_timestamp",
            "wall_clock_datetime",
            "wall_clock_perf_counter",
            "global_rng_choice",
            "numpy_global_draw",
            "unseeded_generator",
            "schedule_from_set",
        }
        assert "seeded_generator" not in symbols
        assert "schedule_sorted" not in symbols

    def test_det001_timer_allowlist(self):
        """obs/prof.py may read host timers; everything else stays hot."""
        by_file = {}
        for f in findings_for("DET001"):
            by_file.setdefault(f.path.rsplit("/", 1)[-1], set()).add(f.symbol)
        # The allowlisted fixture's timer reads are clean...
        assert "allowed_timer_read" not in by_file.get("prof.py", set())
        assert "allowed_timer_read_ns" not in by_file.get("prof.py", set())
        # ...but the exemption is timers-only: RNG use still fires there...
        assert "still_flagged_rng" in by_file.get("prof.py", set())
        # ...and perf_counter outside the allowlist is still flagged.
        assert "wall_clock_perf_counter" in by_file.get("nondeterminism.py", set())

    def test_det001_suppression_pragma(self):
        report = analyze_fixtures(rules=["DET001"])
        # nondeterminism.py suppressed_wall_clock + det_chains.py
        # _accepted_wall_clock (the multi-rule pragma)
        assert report.suppressed == 2
        assert not any(
            f.symbol == "suppressed_wall_clock" for f in report.findings
        )

    def test_sim001_blocking_calls(self):
        symbols = {f.symbol for f in findings_for("SIM001")}
        assert symbols == {"real_sleep", "real_socket", "real_file_read"}


class TestInterprocRulesFire:
    """The whole-program tier: WSRF004/WSRF005, DET002, WAL002, LOCK001."""

    def test_wsrf004_use_after_destroy(self):
        symbols = {f.symbol for f in findings_for("WSRF004")}
        assert symbols == {
            "destroy_then_call",        # client.call(..., 'Destroy') then call
            "destroy_then_load",        # destroy_resource then store.load
            "double_destroy",           # destroy twice
            "destroy_via_helper_then_use",  # destroyer helper then epr_for
        }

    def test_wsrf004_helper_chain_in_message(self):
        by_symbol = {f.symbol: f.message for f in findings_for("WSRF004")}
        assert "_retire() -> destroy_resource()" in by_symbol[
            "destroy_via_helper_then_use"
        ]

    def test_wsrf004_definite_destroy_only(self):
        symbols = {f.symbol for f in findings_for("WSRF004")}
        assert "conditional_destroy_ok" not in symbols  # one branch only
        assert "reassign_after_destroy_ok" not in symbols  # handle rebound
        assert "destroy_last_ok" not in symbols  # destroy is the last touch

    def test_wsrf005_epr_escape(self):
        findings = findings_for("WSRF005")
        symbols = {f.symbol for f in findings}
        assert symbols >= {
            "remember_peer", "cache_in_registry",
            "stash_in_global", "stash_in_class_attr",
        }
        # the two module-level assignments report with no symbol
        module_level = [f for f in findings if f.symbol == ""]
        assert len(module_level) == 2  # SCHEDULER_EPR + BROKER_HANDLE
        assert "local_handle_ok" not in symbols

    def test_wsrf005_suppression(self):
        report = analyze_fixtures(rules=["WSRF005"])
        assert report.suppressed == 1
        assert not any(
            f.symbol == "accepted_registry_entry" for f in report.findings
        )

    def test_det002_taint_through_helpers(self):
        by_symbol = {f.symbol: f.message for f in findings_for("DET002")}
        assert set(by_symbol) == {
            "TimestampingService.Stamp", "start_jitter_process.jitter",
        }
        # the witness chain names the helper and the source
        assert "_wall_clock_tag -> time.time()" in by_symbol[
            "TimestampingService.Stamp"
        ]
        assert "detached process jitter" in by_symbol[
            "start_jitter_process.jitter"
        ]

    def test_det002_clean_and_suppressed_chains(self):
        symbols = {f.symbol for f in findings_for("DET002")}
        assert "SeededService.Sample" not in symbols  # deterministic helper
        # suppressing the source (ignore[DET001, DET002]) kills the taint
        assert "AcceptingService.Accepted" not in symbols

    def test_wal002_layered_and_port_type_sends(self):
        by_symbol = {f.symbol: f.message for f in findings_for("WAL002")}
        assert set(by_symbol) == {
            "LayeredAnnouncer.FinishLayered", "DemandSignalPortType.signal",
        }
        assert "relay -> fire_and_forget in relay" in by_symbol[
            "LayeredAnnouncer.FinishLayered"
        ]
        assert "port-type method" in by_symbol["DemandSignalPortType.signal"]

    def test_wal002_outbox_routed_chain_is_clean(self):
        symbols = {f.symbol for f in findings_for("WAL002")}
        assert "LayeredSafeAnnouncer.FinishSafelyLayered" not in symbols
        # WAL001's lexical site is not double-reported by WAL002
        assert "EagerAnnouncer.Finish" not in symbols

    def test_lock001_unlocked_mutations(self):
        symbols = {f.symbol for f in findings_for("LOCK001")}
        assert symbols == {
            "start_unsafe_sweeper.sweeper",  # direct load-modify-save
            "start_unsafe_reaper.reaper",    # direct destroy
            "_sweep_one",                    # reached through a helper
        }

    def test_lock001_witness_chain(self):
        by_symbol = {f.symbol: f.message for f in findings_for("LOCK001")}
        assert "layered -> _sweep_one" in by_symbol["_sweep_one"]

    def test_lock001_locked_recovery_and_nonprocess_paths_clean(self):
        symbols = {f.symbol for f in findings_for("LOCK001")}
        assert not any(s.startswith("start_safe_sweeper") for s in symbols)
        assert "_locked_sweep" not in symbols  # call site below the acquire
        assert "start_recovery.restore" not in symbols  # recovery allowlist
        assert "plain_helper_not_a_process" not in symbols


# -- engine behavior ----------------------------------------------------------------


class TestEngine:
    def test_golden_report(self):
        report = analyze_fixtures()
        golden = json.loads(GOLDEN.read_text())
        assert report.to_json() == golden, (
            "fixture findings drifted from tests/analysis_golden.json; "
            "if the change is intended, regenerate with: PYTHONPATH=src "
            "python -m repro.analysis tests/analysis_fixtures --no-baseline "
            "--format json > tests/analysis_golden.json"
        )

    def test_fingerprint_is_line_independent(self):
        a = Finding(rule="R", path="p.py", line=10, message="m", symbol="s")
        b = Finding(rule="R", path="p.py", line=99, message="m", symbol="s")
        c = Finding(rule="R", path="p.py", line=10, message="other", symbol="s")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_baseline_filters_findings(self, tmp_path):
        from repro.analysis.engine import write_baseline

        report = analyze_fixtures()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        rerun = analyze_paths(
            [str(FIXTURES)],
            baseline=load_baseline(baseline_path),
            root=REPO_ROOT,
        )
        assert rerun.findings == []
        assert rerun.baselined == len(report.findings)
        assert rerun.exit_code == 0

    def test_parse_error_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([str(bad)], root=tmp_path)
        assert len(report.parse_errors) == 1
        assert report.exit_code == 1

    def test_baseline_ratchet_flags_stale_entries(self, tmp_path):
        """Entries matching nothing fail the run until pruned."""
        report = analyze_fixtures()
        baseline_path = tmp_path / "baseline.json"
        ghost = Finding(
            rule="WSRF001", path="gone.py", line=1,
            message="a finding the code no longer produces", symbol="gone",
        )
        write_baseline(baseline_path, [*report.findings, ghost])
        rerun = analyze_paths(
            [str(FIXTURES)],
            baseline=load_baseline(baseline_path),
            root=REPO_ROOT,
        )
        assert rerun.findings == []
        assert rerun.stale_baseline == [ghost.fingerprint]
        assert rerun.exit_code == 1
        assert "stale baseline entry" in rerun.render_text()

    def test_stale_detection_needs_full_catalog(self, tmp_path):
        """A --rules-restricted run has no opinion about other entries."""
        baseline_path = tmp_path / "baseline.json"
        ghost = Finding(rule="DET001", path="gone.py", line=1, message="x")
        write_baseline(baseline_path, [ghost])
        restricted = analyze_paths(
            [str(FIXTURES)], rules=["WSRF001"],
            baseline=load_baseline(baseline_path), root=REPO_ROOT,
        )
        assert restricted.stale_baseline == []

    def test_prune_baseline_only_shrinks(self, tmp_path):
        report = analyze_fixtures()
        baseline_path = tmp_path / "baseline.json"
        ghost = Finding(rule="WSRF001", path="gone.py", line=1, message="x")
        write_baseline(baseline_path, [*report.findings, ghost])
        rerun = analyze_paths(
            [str(FIXTURES)],
            baseline=load_baseline(baseline_path), root=REPO_ROOT,
        )
        pruned = prune_baseline(baseline_path, rerun.matched_baseline)
        assert pruned == 1
        kept = load_baseline(baseline_path)
        assert ghost.fingerprint not in kept
        assert kept == {f.fingerprint for f in report.findings}
        # pruning never adds: a finding missing from the baseline stays out
        assert prune_baseline(baseline_path, rerun.matched_baseline) == 0

    def test_show_suppressed_audit_view(self):
        report = analyze_fixtures()
        audited = {f.symbol for f in report.suppressed_findings}
        assert "suppressed_wall_clock" in audited
        assert "accepted_registry_entry" in audited
        payload = report.to_json(show_suppressed=True)
        assert len(payload["suppressed_findings"]) == report.suppressed
        assert "(suppressed)" in report.render_text(show_suppressed=True)
        assert "suppressed_findings" not in report.to_json()

    def test_multi_rule_suppression_comment(self, tmp_path):
        src = tmp_path / "multi.py"
        src.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # wsrfcheck: ignore[DET001, WSRF001]\n"
        )
        report = analyze_paths([str(src)], root=tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_sarif_output(self):
        report = analyze_fixtures()
        doc = json.loads(report.render_sarif())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "wsrfcheck"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"WSRF004", "WSRF005", "DET002", "WAL002", "LOCK001"} <= rule_ids
        assert len(run["results"]) == len(report.findings)
        first = run["results"][0]
        assert first["partialFingerprints"]["wsrfcheck/v1"] == (
            report.findings[0].fingerprint
        )
        assert first["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] == report.findings[0].line


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCliExitMatrix:
    """Exit 0 = clean/baselined, 1 = findings/stale, 2 = usage errors."""

    def test_findings_exit_1_with_json(self):
        proc = run_cli(str(FIXTURES), "--no-baseline", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_analyzed"] == 12

    def test_clean_tree_exits_0(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_unknown_rule_exits_2(self):
        proc = run_cli("src/repro", "--rules", "WSRF001,NOPE001")
        assert proc.returncode == 2
        assert "unknown rule code(s): NOPE001" in proc.stderr

    def test_missing_path_exits_2(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2
        assert "no such file or directory" in proc.stderr

    def test_unreadable_baseline_exits_2(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        proc = run_cli("src/repro", "--baseline", str(bad))
        assert proc.returncode == 2
        assert "unreadable baseline" in proc.stderr

    def test_stale_baseline_exits_1_then_update_prunes(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        ghost = Finding(rule="DET001", path="gone.py", line=1, message="x")
        write_baseline(baseline_path, [*analyze_fixtures().findings, ghost])
        stale = run_cli(str(FIXTURES), "--baseline", str(baseline_path))
        assert stale.returncode == 1
        assert "stale baseline entry" in stale.stdout
        update = run_cli(
            str(FIXTURES), "--baseline", str(baseline_path),
            "--update-baseline",
        )
        assert update.returncode == 0
        assert "pruned 1 stale entry" in update.stdout
        assert ghost.fingerprint not in load_baseline(baseline_path)
        rerun = run_cli(str(FIXTURES), "--baseline", str(baseline_path))
        assert rerun.returncode == 0, rerun.stdout

    def test_sarif_format_via_cli(self):
        proc = run_cli(str(FIXTURES), "--no-baseline", "--format", "sarif")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "wsrfcheck"

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        assert "LOCK001  [program]" in proc.stdout
        assert "WSRF001  [module]" in proc.stdout


# -- CI-gating meta-tests -----------------------------------------------------------


class TestCallGraph:
    """Targeted resolution cases the interprocedural rules lean on."""

    def _graph(self, source, module="m", path="m.py"):
        from repro.analysis.callgraph import build_callgraph

        tree = ast.parse(source)
        model = build_model([(module, path, tree)])
        return build_callgraph([(module, path, tree)], model)

    def test_self_call_resolves_inside_closure(self):
        graph = self._graph(
            """
class W:
    def tick(self):
        pass

    def start(self, env):
        def loop(env):
            while True:
                yield env.timeout(1.0)
                self.tick()
        return env.process(loop(env))
"""
        )
        edges = {(e.caller, e.callee) for e in graph.callees("m.W.start.loop")}
        assert ("m.W.start.loop", "m.W.tick") in edges

    def test_factory_return_type_infers_local(self):
        graph = self._graph(
            """
class Manager:
    def work(self):
        pass

def make_manager(wrapper):
    manager = Manager()
    return manager

def use(wrapper):
    manager = make_manager(wrapper)
    manager.work()
"""
        )
        edges = {(e.caller, e.callee) for e in graph.callees("m.use")}
        assert ("m.use", "m.Manager.work") in edges

    def test_ambiguous_bare_name_stays_unresolved(self):
        graph = self._graph(
            """
class A:
    def op(self):
        pass

class B:
    def op(self):
        pass

def use(x):
    x.op()
"""
        )
        assert graph.callees("m.use") == []


class TestShippedTreeIsClean:
    def test_rule_catalog_is_complete(self):
        assert set(rule_catalog()) == {
            "WSRF001", "WSRF002", "WSRF003", "WSRF004", "WSRF005",
            "DET001", "DET002", "SIM001", "WAL001", "WAL002", "LOCK001",
        }

    def test_shipped_baseline_has_no_critical_entries(self):
        data = json.loads(BASELINE.read_text())
        critical = [
            e for e in data["findings"] if e["rule"] in CRITICAL_RULES
        ]
        assert critical == [], (
            "tier-1-critical rules must never be baselined; fix the "
            f"underlying issues instead: {critical}"
        )

    def test_src_repro_analyzes_clean_without_baseline(self):
        report = analyze_paths([str(REPO_ROOT / "src" / "repro")], root=REPO_ROOT)
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_critical_interproc_rules_ship_at_zero(self):
        """WSRF004/WAL002/LOCK001 join the never-baselined set: the src
        tree must hold zero findings for them with no baseline at all."""
        report = analyze_paths(
            [str(REPO_ROOT / "src" / "repro")],
            rules=["WSRF004", "WAL002", "LOCK001"],
            root=REPO_ROOT,
        )
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
