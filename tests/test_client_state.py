"""Durable client-side EPR state: survive a client restart (§5)."""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG


@pytest.fixture()
def testbed():
    tb = Testbed(n_machines=2, seed=53)
    tb.programs.register(make_compute_program("tiny", 0.5, outputs={"out": b"data"}))
    return tb


def _run(tb, client, n=2):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("tiny"))
    for i in range(n):
        spec.add(JobSpec(name=f"j{i}", executable=FileRef(exe, "job.exe"),
                         outputs=["out"]))
    outcome, jobset_epr, topic = tb.run_job_set(client, spec)
    tb.settle(2.0)
    assert outcome == "completed"
    return topic


class TestClientStatePersistence:
    def test_export_import_roundtrip(self, testbed):
        client = testbed.make_client()
        topic = _run(testbed, client)
        blob = client.export_state()
        assert isinstance(blob, bytes) and b"ClientState" in blob
        restored = client.import_state(blob)
        assert topic in restored
        assert set(restored[topic]) == {"j0", "j1"}
        for job in restored[topic].values():
            assert "job" in job and "dir" in job

    def test_restarted_client_uses_restored_eprs(self, testbed):
        old_client = testbed.make_client()
        topic = _run(testbed, old_client)
        blob = old_client.export_state()
        # The client machine "shuts down": listener and file server go away.
        old_client.listener.close()
        old_client.file_server.close()

        # A fresh client process on a NEW host restores the inventory
        # from the persisted bytes and fetches results directly.
        new_client = testbed.make_client(host_name="client-reborn")
        restored = new_client.import_state(blob)
        dir_epr = restored[topic]["j0"]["dir"]
        content = testbed.run(new_client.fetch_output(dir_epr, "out"))
        assert content.to_bytes() == b"data"
        status = testbed.run(
            new_client.soap.get_resource_property(
                restored[topic]["j0"]["job"], QName(UVA, "Status")
            )
        )
        assert status in ("Exited", "Killed")

    def test_state_scoped_to_what_the_client_saw(self, testbed):
        alice = testbed.make_client()
        bob = testbed.make_client()
        topic_a = _run(testbed, alice)
        topic_b = _run(testbed, bob)
        alice_state = alice.import_state(alice.export_state())
        assert topic_a in alice_state
        assert topic_b not in alice_state  # never subscribed to bob's topic

    def test_empty_history_exports_empty_doc(self, testbed):
        client = testbed.make_client()
        assert client.import_state(client.export_state()) == {}
