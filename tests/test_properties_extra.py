"""Extra property-based tests on cross-cutting invariants."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.wsn.topics import (
    CONCRETE_DIALECT,
    FULL_DIALECT,
    SIMPLE_DIALECT,
    TopicExpression,
)
from repro.db import Column, Database
from repro.net import NetworkParams
from repro.sim import Environment
from repro.wsa import EndpointReference
from repro.xmlx import QName

_seg = st.sampled_from(["a", "b", "c", "js-1", "job2", "status"])
_path = st.lists(_seg, min_size=1, max_size=4).map("/".join)


class TestTopicProperties:
    @given(_path)
    def test_concrete_matches_itself_only(self, path):
        expr = TopicExpression(path, CONCRETE_DIALECT)
        assert expr.matches(path)
        assert not expr.matches(path + "/extra")

    @given(_path, _path)
    def test_simple_matches_by_root(self, base, rest):
        root = base.split("/")[0]
        expr = TopicExpression(root, SIMPLE_DIALECT)
        assert expr.matches(f"{root}/{rest}")
        assert expr.matches(root)

    @given(_path)
    def test_full_doublestar_matches_everything_below(self, path):
        root = path.split("/")[0]
        expr = TopicExpression(f"{root}/**", FULL_DIALECT)
        assert expr.matches(path) == (path.split("/")[0] == root)

    @given(_path)
    def test_star_matches_exactly_one_segment(self, path):
        segments = path.split("/")
        assume(len(segments) >= 2)
        pattern = "/".join(["*"] + segments[1:])
        expr = TopicExpression(pattern, FULL_DIALECT)
        assert expr.matches(path)
        assert not expr.matches("/".join(segments + ["extra"]))

    @given(_path, _path)
    def test_full_literal_equals_concrete(self, pattern, path):
        """A Full-dialect expression without wildcards behaves exactly
        like the Concrete dialect."""
        full = TopicExpression(pattern, FULL_DIALECT)
        concrete = TopicExpression(pattern, CONCRETE_DIALECT)
        assert full.matches(path) == concrete.matches(path)


class TestEprProperties:
    @given(
        st.text(alphabet="abcdxyz", min_size=1, max_size=8),
        st.dictionaries(
            st.text(alphabet="kmn", min_size=1, max_size=4),
            st.text(alphabet="v0123 <&>'\"", max_size=10),
            max_size=4,
        ),
    )
    def test_epr_xml_roundtrip(self, hostpart, props):
        epr = EndpointReference(
            f"http://{hostpart}:80/Svc",
            {QName("http://t", k): v for k, v in props.items()},
        )
        from repro.xmlx import parse, to_string

        again = EndpointReference.from_xml(parse(to_string(epr.to_xml())))
        assert again == epr
        assert hash(again) == hash(epr)


class TestDbProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.sampled_from(["R", "E", "K"]),
            ),
            max_size=30,
        )
    )
    def test_insert_then_select_consistency(self, rows):
        db = Database()
        t = db.create_table(
            "jobs",
            [Column("id", "INTEGER", primary_key=True), Column("s", "TEXT")],
        )
        inserted = {}
        for key, status in rows:
            if key in inserted:
                continue
            t.insert({"id": key, "s": status})
            inserted[key] = status
        assert len(t) == len(inserted)
        for key, status in inserted.items():
            assert t.get(key)["s"] == status
        for status in ("R", "E", "K"):
            expected = sorted(k for k, v in inserted.items() if v == status)
            got = sorted(r["id"] for r in t.select(equals={"s": status}))
            assert got == expected

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=25)
    )
    def test_delete_is_complement_of_select(self, keys):
        db = Database()
        t = db.create_table("t", [Column("id", "INTEGER", primary_key=True)])
        unique = sorted(set(keys))
        for key in unique:
            t.insert({"id": key})
        evens = [k for k in unique if k % 2 == 0]
        deleted = t.delete(where=lambda r: r["id"] % 2 == 0)
        assert deleted == len(evens)
        remaining = sorted(r["id"] for r in t.select())
        assert remaining == [k for k in unique if k % 2 == 1]


class TestNetworkParamProperties:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_transfer_time_additive(self, a, b):
        p = NetworkParams()
        combined = p.transfer_time(a + b, 0)
        split = p.transfer_time(a, 0) + p.transfer_time(b, 0)
        assert abs(combined - split) < 1e-6

    @given(st.floats(min_value=0, max_value=3600, allow_nan=False))
    def test_sim_clock_never_rewinds(self, horizon):
        env = Environment()
        env.timeout(horizon / 2)
        env.run(until=horizon)
        assert env.now == horizon
