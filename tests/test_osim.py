"""Tests for the simulated Windows machine substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import Network
from repro.osim import (
    AuthenticationError,
    FileContent,
    FsError,
    Machine,
    MachineParams,
    ProgramRegistry,
    SimFileSystem,
    SpawnError,
    UserAccounts,
)
from repro.osim.cpu import ProcessState
from repro.osim.filesystem import normalize_path
from repro.osim.programs import make_compute_program
from repro.sim import Environment


class TestFileContent:
    def test_real_bytes(self):
        c = FileContent.from_bytes(b"hello")
        assert c.size == 5 and not c.is_synthetic
        assert c.to_bytes() == b"hello"

    def test_synthetic(self):
        c = FileContent.synthetic(1_000_000_000)
        assert c.size == 1_000_000_000 and c.is_synthetic
        with pytest.raises(FsError, match="materialize"):
            c.to_bytes()

    def test_small_synthetic_materializes_deterministically(self):
        a = FileContent.synthetic(100).to_bytes()
        b = FileContent.synthetic(100).to_bytes()
        assert a == b and len(a) == 100

    def test_equality_by_digest(self):
        assert FileContent.from_bytes(b"x") == FileContent.from_bytes(b"x")
        assert FileContent.from_bytes(b"x") != FileContent.from_bytes(b"y")
        assert FileContent.synthetic(10) == FileContent.synthetic(10)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FileContent()
        with pytest.raises(ValueError):
            FileContent(data=b"x", synthetic_size=1)
        with pytest.raises(ValueError):
            FileContent.synthetic(-1)


class TestPathNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("C:\\grid\\job1", "c:/grid/job1"),
            ("c:/grid//job1/", "c:/grid/job1"),
            ("a/./b", "a/b"),
            ("a/b/../c", "a/c"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_escape_rejected(self):
        with pytest.raises(FsError):
            normalize_path("../etc")
        with pytest.raises(FsError):
            normalize_path("")


class TestSimFileSystem:
    def test_mkdir_write_read(self):
        fs = SimFileSystem()
        fs.mkdir("C:\\grid\\wd1")
        fs.write_file("c:/grid/wd1/in.dat", b"data")
        assert fs.read_file("C:\\grid\\wd1\\in.dat").to_bytes() == b"data"
        assert fs.is_file("c:/grid/wd1/in.dat")
        assert fs.is_dir("c:/grid")

    def test_write_requires_parent(self):
        fs = SimFileSystem()
        with pytest.raises(FsError, match="parent"):
            fs.write_file("c:/nodir/f", b"x")

    def test_mkdir_no_parents(self):
        fs = SimFileSystem()
        with pytest.raises(FsError, match="parent"):
            fs.mkdir("a/b/c", parents=False)

    def test_file_dir_collisions(self):
        fs = SimFileSystem()
        fs.mkdir("a")
        with pytest.raises(FsError):
            fs.write_file("a", b"x")
        fs.write_file("a/f", b"x")
        with pytest.raises(FsError):
            fs.mkdir("a/f")

    def test_listdir(self):
        fs = SimFileSystem()
        fs.mkdir("w/sub")
        fs.write_file("w/b.txt", b"1")
        fs.write_file("w/a.txt", b"2")
        fs.write_file("w/sub/deep.txt", b"3")
        assert fs.listdir("w") == ["a.txt", "b.txt", "sub"]
        with pytest.raises(FsError):
            fs.listdir("nope")

    def test_create_unique_dirs_distinct(self):
        fs = SimFileSystem()
        d1 = fs.create_unique_dir("c:/grid", "job")
        d2 = fs.create_unique_dir("c:/grid", "job")
        assert d1 != d2
        assert fs.is_dir(d1) and fs.is_dir(d2)

    def test_move_file(self):
        fs = SimFileSystem()
        fs.mkdir("a")
        fs.mkdir("b")
        fs.write_file("a/f", b"payload")
        fs.move_file("a/f", "b/g")
        assert not fs.is_file("a/f")
        assert fs.read_file("b/g").to_bytes() == b"payload"

    def test_delete_file(self):
        fs = SimFileSystem()
        fs.mkdir("a")
        fs.write_file("a/f", b"x")
        fs.delete_file("a/f")
        with pytest.raises(FsError):
            fs.delete_file("a/f")

    def test_remove_tree(self):
        fs = SimFileSystem()
        fs.mkdir("a/b")
        fs.write_file("a/f", b"x")
        fs.write_file("a/b/g", b"y")
        removed = fs.remove_tree("a")
        assert removed == 4  # a, a/b, a/f, a/b/g
        assert not fs.is_dir("a")

    def test_remove_root_refused(self):
        fs = SimFileSystem()
        with pytest.raises(FsError):
            fs.remove_tree("x")  # nonexistent

    def test_total_bytes(self):
        fs = SimFileSystem()
        fs.mkdir("a")
        fs.write_file("a/f", b"12345")
        fs.write_file("a/g", FileContent.synthetic(1000))
        assert fs.total_bytes() == 1005

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4))
    def test_mkdir_idempotent_property(self, parts):
        fs = SimFileSystem()
        path = "/".join(parts)
        first = fs.mkdir(path)
        assert fs.mkdir(path) == first
        assert fs.is_dir(path)


class TestUserAccounts:
    def test_authenticate(self):
        users = UserAccounts()
        users.add_user("gw", "pass1")
        assert users.authenticate("gw", "pass1") == "gw"
        with pytest.raises(AuthenticationError):
            users.authenticate("gw", "wrong")
        with pytest.raises(AuthenticationError):
            users.authenticate("ghost", "pass1")

    def test_remove_user(self):
        users = UserAccounts()
        users.add_user("gw", "p")
        users.remove_user("gw")
        with pytest.raises(AuthenticationError):
            users.authenticate("gw", "p")

    def test_grid_credential_mapping(self):
        users = UserAccounts()
        users.add_user("local-gw", "p")
        users.map_grid_credential("CN=Glenn Wasson/O=UVa", "local-gw")
        assert users.resolve_grid_credential("CN=Glenn Wasson/O=UVa") == "local-gw"
        assert users.resolve_grid_credential("CN=Nobody") is None
        with pytest.raises(ValueError):
            users.map_grid_credential("CN=X", "ghost")
        users.remove_user("local-gw")
        assert users.resolve_grid_credential("CN=Glenn Wasson/O=UVa") is None

    def test_empty_username_rejected(self):
        with pytest.raises(ValueError):
            UserAccounts().add_user("", "p")


def _machine(name="node1", speed=1.0, cores=1, programs=None):
    env = Environment()
    net = Network(env)
    m = Machine(
        net,
        name,
        params=MachineParams(cpu_speed=speed, cores=cores),
        programs=programs,
    )
    m.users.add_user("griduser", "pw")
    m.fs.mkdir("c:/grid")
    return env, m


def _spawn(env, m, binary="c:/grid/wd/job.exe", args=(), user="griduser", pw="pw", wd="c:/grid/wd"):
    proc_holder = {}

    def do(env):
        p = yield from m.procspawn.spawn(binary, list(args), user, pw, wd)
        proc_holder["p"] = p
        code = yield p.done
        return code

    runner = env.process(do(env))
    env.run(until=runner)
    return proc_holder["p"], runner.value


class TestProcSpawn:
    def _setup_job(self, m, work=2.0, name="sleepy"):
        m.programs.define(
            name,
            make_compute_program(name, work, outputs={"out.dat": b"done"}).behavior,
        )
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", f"#!uva-program:{name}\n".encode())

    def test_spawn_runs_to_exit(self):
        env, m = _machine()
        self._setup_job(m)
        process, code = _spawn(env, m)
        assert code == 0
        assert process.state == ProcessState.EXITED
        assert m.fs.read_file("c:/grid/wd/out.dat").to_bytes() == b"done"
        # 2 work units at speed 1.0 plus spawn cost.
        assert process.cpu_time == pytest.approx(2.0, rel=1e-6)
        assert env.now == pytest.approx(2.0 + m.params.proc_spawn_s, rel=1e-6)

    def test_faster_machine_finishes_sooner(self):
        env, m = _machine(speed=2.0)
        self._setup_job(m)
        _, _ = _spawn(env, m)
        assert env.now == pytest.approx(1.0 + m.params.proc_spawn_s, rel=1e-6)

    def test_bad_password_rejected(self):
        env, m = _machine()
        self._setup_job(m)
        def do(env):
            yield from m.procspawn.spawn("c:/grid/wd/job.exe", [], "griduser", "WRONG", "c:/grid/wd")
        with pytest.raises(SpawnError, match="authentication"):
            env.run(until=env.process(do(env)))

    def test_missing_binary_rejected(self):
        env, m = _machine()
        m.fs.mkdir("c:/grid/wd")
        def do(env):
            yield from m.procspawn.spawn("c:/grid/wd/nope.exe", [], "griduser", "pw", "c:/grid/wd")
        with pytest.raises(SpawnError, match="cannot read binary"):
            env.run(until=env.process(do(env)))

    def test_unregistered_program_rejected(self):
        env, m = _machine()
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:ghost\n")
        def do(env):
            yield from m.procspawn.spawn("c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd")
        with pytest.raises(SpawnError, match="ghost"):
            env.run(until=env.process(do(env)))

    def test_non_executable_file_rejected(self):
        env, m = _machine()
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"just some data")
        def do(env):
            yield from m.procspawn.spawn("c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd")
        with pytest.raises(SpawnError, match="not a recognized"):
            env.run(until=env.process(do(env)))

    def test_missing_working_dir_rejected(self):
        env, m = _machine()
        def do(env):
            yield from m.procspawn.spawn("c:/x.exe", [], "griduser", "pw", "c:/ghost")
        with pytest.raises(SpawnError, match="working directory"):
            env.run(until=env.process(do(env)))

    def test_crashing_program_exits_nonzero(self):
        env, m = _machine()

        def crash(ctx):
            yield from ctx.compute(0.5)
            raise RuntimeError("segfault")

        m.programs.define("crasher", crash)
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:crasher\n")
        process, code = _spawn(env, m)
        assert code == 1
        assert process.state == ProcessState.EXITED

    def test_nonzero_exit_code_propagates(self):
        env, m = _machine()
        m.programs.register(make_compute_program("fail3", 0.1, exit_code=3))
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:fail3\n")
        _, code = _spawn(env, m)
        assert code == 3

    def test_kill_running_process(self):
        env, m = _machine()
        self._setup_job(m, work=100.0)
        holder = {}

        def do(env):
            p = yield from m.procspawn.spawn(
                "c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd"
            )
            holder["p"] = p
            yield env.timeout(5.0)
            p.kill()
            code = yield p.done
            return code

        runner = env.process(do(env))
        env.run(until=runner)
        p = holder["p"]
        assert runner.value == -1
        assert p.state == ProcessState.KILLED
        assert p.cpu_time == pytest.approx(5.0, rel=1e-6)
        # Output never written.
        assert not m.fs.is_file("c:/grid/wd/out.dat")

    def test_kill_exited_process_is_noop(self):
        env, m = _machine()
        self._setup_job(m, work=0.1)
        process, code = _spawn(env, m)
        process.kill()
        assert process.state == ProcessState.EXITED and process.exit_code == code

    def test_stopped_service_refuses(self):
        env, m = _machine()
        m.procspawn.stop()
        def do(env):
            yield from m.procspawn.spawn("x", [], "griduser", "pw", "c:/grid")
        with pytest.raises(RuntimeError, match="not running"):
            env.run(until=env.process(do(env)))


class TestCpuSharing:
    def test_two_processes_share_one_core(self):
        env, m = _machine()
        m.programs.register(make_compute_program("burn", 4.0))
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:burn\n")

        finished = []

        def launch(env):
            p = yield from m.procspawn.spawn(
                "c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd"
            )
            yield p.done
            finished.append(env.now)

        env.process(launch(env))
        env.process(launch(env))
        env.run()
        # Both need 4 units; sharing one core, both finish at ~8s (+spawn).
        assert finished[0] == pytest.approx(8.0 + m.params.proc_spawn_s, rel=1e-3)
        assert finished[1] == pytest.approx(finished[0], rel=1e-3)

    def test_two_cores_run_in_parallel(self):
        env, m = _machine(cores=2)
        m.programs.register(make_compute_program("burn", 4.0))
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:burn\n")
        finished = []

        def launch(env):
            p = yield from m.procspawn.spawn(
                "c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd"
            )
            yield p.done
            finished.append(env.now)

        env.process(launch(env))
        env.process(launch(env))
        env.run()
        assert max(finished) == pytest.approx(4.0 + m.params.proc_spawn_s, rel=1e-3)

    def test_utilization_reflects_load(self):
        env, m = _machine()
        assert m.utilization() == 0.0
        m.programs.register(make_compute_program("burn", 10.0))
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:burn\n")

        def launch(env):
            yield from m.procspawn.spawn(
                "c:/grid/wd/job.exe", [], "griduser", "pw", "c:/grid/wd"
            )

        def probe(env):
            yield env.timeout(1.0)
            return m.utilization()

        env.process(launch(env))
        p = env.process(probe(env))
        util = env.run(until=p)
        assert util == 1.0
        env.run()
        assert m.utilization() == 0.0

    def test_cpu_seconds_delivered_tracked(self):
        env, m = _machine()
        m.programs.register(make_compute_program("burn", 3.0))
        m.fs.mkdir("c:/grid/wd")
        m.fs.write_file("c:/grid/wd/job.exe", b"#!uva-program:burn\n")
        _spawn(env, m)
        assert m.cpu.cpu_seconds_delivered == pytest.approx(3.0, rel=1e-6)

    def test_scheduler_validation(self):
        env = Environment()
        from repro.osim import CpuScheduler

        with pytest.raises(ValueError):
            CpuScheduler(env, cores=0)
        with pytest.raises(ValueError):
            CpuScheduler(env, speed=0)


class TestProgramRegistry:
    def test_duplicate_rejected(self):
        reg = ProgramRegistry()
        reg.define("p", lambda ctx: 0)
        with pytest.raises(ValueError):
            reg.define("p", lambda ctx: 0)

    def test_binary_content_roundtrip(self):
        reg = ProgramRegistry()
        prog = reg.define("analyzer", lambda ctx: 0)
        content = FileContent.from_bytes(prog.binary_content())
        assert reg.resolve_binary(content) is prog

    def test_unknown_binary(self):
        reg = ProgramRegistry()
        with pytest.raises(ValueError):
            reg.resolve_binary(FileContent.from_bytes(b"MZ\x90\x00"))
        with pytest.raises(KeyError):
            reg.resolve_binary(FileContent.from_bytes(b"#!uva-program:ghost\n"))


class TestIis:
    def test_routes_by_path(self):
        env, m = _machine()

        class App:
            def handle_soap(self, payload, ctx):
                yield env.timeout(0)
                return f"from-app:{payload}"

        m.iis.register_app("/ExecService", App())

        def call(env):
            reply = yield from m.network.request(
                "node1", "http://node1:80/ExecService", "ping"
            )
            return reply

        # Self-call via loopback through the fabric.
        p = env.process(call(env))
        env.run(until=p)
        assert p.value == "from-app:ping"
        assert m.iis.requests_served == 1

    def test_unknown_path_404(self):
        env, m = _machine()
        def call(env):
            yield from m.network.request("node1", "http://node1:80/Ghost", "x")
        with pytest.raises(LookupError, match="no service"):
            env.run(until=env.process(call(env)))

    def test_duplicate_path_rejected(self):
        env, m = _machine()

        class App:
            def handle_soap(self, payload, ctx):
                yield env.timeout(0)

        m.iis.register_app("/A", App())
        with pytest.raises(ValueError):
            m.iis.register_app("A", App())

    def test_worker_pool_limits_concurrency(self):
        env = Environment()
        net = Network(env)
        m = Machine(net, "node1", params=MachineParams(iis_workers=4))
        m.users.add_user("griduser", "pw")
        in_flight = {"now": 0, "max": 0}

        class SlowApp:
            def handle_soap(self, payload, ctx):
                in_flight["now"] += 1
                in_flight["max"] = max(in_flight["max"], in_flight["now"])
                yield env.timeout(1.0)
                in_flight["now"] -= 1
                return "ok"

        m.iis.register_app("/Slow", SlowApp())
        client = m.network.add_host("client")

        def call(env):
            yield from m.network.request("client", "http://node1:80/Slow", "x")

        for _ in range(10):
            env.process(call(env))
        env.run()
        assert in_flight["max"] == m.params.iis_workers

    def test_app_type_checked(self):
        env, m = _machine()
        with pytest.raises(TypeError):
            m.iis.register_app("/X", object())
