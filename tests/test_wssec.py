"""Tests for the simulated WS-Security layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wssec import (
    CertificateAuthority,
    CertificateError,
    CryptoError,
    KeyPair,
    SecurityError,
    UsernameToken,
    build_security_header,
    decrypt_for,
    encrypt_to,
    open_security_header,
    sign,
    verify,
)
from repro.wssec.x509 import enroll
from repro.xmlx import parse, to_string


@pytest.fixture()
def ca():
    return CertificateAuthority()


@pytest.fixture()
def service(ca):
    return enroll(ca, "ExecutionService@node1")


class TestCertificates:
    def test_issue_and_verify(self, ca, service):
        _, cert = service
        ca.verify(cert)  # does not raise
        assert cert.subject == "ExecutionService@node1"

    def test_foreign_issuer_rejected(self, ca):
        other = CertificateAuthority("Rogue CA")
        _, cert = enroll(other, "eve")
        with pytest.raises(CertificateError, match="unknown issuer"):
            ca.verify(cert)

    def test_tampered_subject_rejected(self, ca, service):
        _, cert = service
        from dataclasses import replace

        forged = replace(cert, subject="root@node1")
        with pytest.raises(CertificateError, match="bad signature"):
            ca.verify(forged)

    def test_revocation(self, ca, service):
        _, cert = service
        ca.revoke(cert)
        with pytest.raises(CertificateError, match="revoked"):
            ca.verify(cert)

    def test_expiry(self, ca):
        _, cert = enroll(ca, "temp", not_after=100.0)
        ca.verify(cert, now=99.0)
        with pytest.raises(CertificateError, match="expired"):
            ca.verify(cert, now=101.0)

    def test_key_pairs_unique(self):
        a, b = KeyPair.generate("x"), KeyPair.generate("x")
        assert a.key_id != b.key_id

    def test_fingerprint_stable(self, service):
        _, cert = service
        assert cert.fingerprint() == cert.fingerprint()


class TestCrypto:
    def test_encrypt_decrypt_roundtrip(self, service):
        keys, cert = service
        assert decrypt_for(keys, encrypt_to(cert, b"hello")) == b"hello"

    def test_wrong_key_rejected(self, ca, service):
        _, cert = service
        other_keys, _ = enroll(ca, "other")
        with pytest.raises(CryptoError, match="not encrypted to this key"):
            decrypt_for(other_keys, encrypt_to(cert, b"hello"))

    def test_corruption_detected(self, service):
        keys, cert = service
        blob = bytearray(encrypt_to(cert, b"secret payload"))
        blob[-1] ^= 0xFF
        with pytest.raises(CryptoError, match="integrity"):
            decrypt_for(keys, bytes(blob))

    def test_malformed_ciphertext(self, service):
        keys, _ = service
        with pytest.raises(CryptoError, match="malformed"):
            decrypt_for(keys, b"nonsense")

    def test_sign_verify(self, service):
        keys, _ = service
        sig = sign(keys, b"data")
        assert verify(keys, b"data", sig)
        assert not verify(keys, b"DATA", sig)
        assert not verify(keys, b"data", "garbage")
        assert not verify(KeyPair.generate("z"), b"data", sig)

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, payload):
        keys = KeyPair.generate("prop")
        ca = CertificateAuthority()
        cert = ca.issue("prop", keys)
        assert decrypt_for(keys, encrypt_to(cert, payload)) == payload


class TestUsernameTokenHeader:
    def test_header_roundtrip_through_xml(self, service):
        keys, cert = service
        token = UsernameToken("griduser", "s3cret!")
        header = build_security_header(token, cert)
        # Wire trip: serialize and re-parse the header element.
        reparsed = parse(to_string(header))
        assert open_security_header(reparsed, keys) == token

    def test_only_target_service_can_open(self, ca, service):
        _, cert = service
        other_keys, _ = enroll(ca, "other-service")
        header = build_security_header(UsernameToken("u", "p"), cert)
        with pytest.raises(SecurityError):
            open_security_header(header, other_keys)

    def test_password_not_visible_on_wire(self, service):
        _, cert = service
        header = build_security_header(UsernameToken("griduser", "hunter2"), cert)
        wire = to_string(header)
        assert "hunter2" not in wire
        assert "griduser" not in wire

    def test_missing_token_rejected(self, service):
        keys, _ = service
        from repro.xmlx import NS, Element, QName

        empty = Element(QName(NS.WSSE, "Security"))
        with pytest.raises(SecurityError, match="lacks"):
            open_security_header(empty, keys)

    def test_wrong_element_rejected(self, service):
        keys, _ = service
        from repro.xmlx import Element

        with pytest.raises(SecurityError, match="not a wsse:Security"):
            open_security_header(Element("x"), keys)

    def test_token_with_null_and_unicode(self, service):
        keys, cert = service
        token = UsernameToken("ua", "p\x00w:日本語")
        header = build_security_header(token, cert)
        assert open_security_header(header, keys) == token
