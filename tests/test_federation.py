"""The federation layer (docs/federation.md).

Three proof obligations:

- **Equivalence**: a 1-zone federated run of the Fig. 3 job set produces
  the same outcomes, exit codes, placements, output bytes and normalized
  final store state as the single-scheduler path — federation is pure
  topology, not semantics.
- **Sharding**: Hypothesis properties over the consistent-hash ring —
  every id maps to exactly one live zone, the mapping is deterministic
  (process-independent, no salted ``hash()``), and adding/removing a
  zone remaps only the expected fraction of ids.
- **Cross-zone behavior**: a full zone dispatches through the aggregator
  catalog into another zone; the aggregator honors its staleness
  contract (serve fresh from cache, refresh stale inline, serve a dead
  zone stale rather than block); submission fails over along the ring.

Chaos-under-partition scenarios live in tests/test_chaos.py
(``TestFederationUnderFire``); sanitizer coverage in tests/test_sanitizer.py.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.resource_store import encode_state
from repro.gridapp import (
    FederationConfig,
    FileRef,
    HashRing,
    JobSpec,
    Testbed,
)
from repro.gridapp.federation import FederatedGridClient, ZoneRoute
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG
SG = NS.WSRF_SG

PAYLOAD = b"federation payload"

#: run-relative artifacts, not semantics (see test_perf_equivalence.py)
_TIME_KEYS = {QName(UVA, "job_dispatched_at"), QName(UVA, "pid")}


# -- consistent-hash ring properties (satellite 2) -----------------------------------

_zone_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
_zone_sets = st.lists(_zone_name, min_size=1, max_size=8, unique=True)
_keys = st.lists(
    st.text(min_size=0, max_size=30), min_size=1, max_size=200, unique=True
)


class TestHashRingProperties:
    @settings(max_examples=60, deadline=None)
    @given(zones=_zone_sets, keys=_keys)
    def test_every_id_maps_to_exactly_one_live_zone(self, zones, keys):
        ring = HashRing(zones)
        for key in keys:
            owner = ring.owner(key)
            assert owner in zones
            order = ring.preference(key)
            assert order[0] == owner
            assert sorted(order) == sorted(zones)  # a permutation: no
            # zone missing, none twice

    @settings(max_examples=60, deadline=None)
    @given(zones=_zone_sets, keys=_keys)
    def test_mapping_is_deterministic(self, zones, keys):
        """Two independently built rings agree on every key — the
        mapping is a pure function of the zone names (sha256, never the
        process-salted ``hash()``), so clients on different hosts route
        identically without coordination."""
        a = HashRing(zones)
        b = HashRing(list(reversed(zones)))  # construction order irrelevant
        for key in keys:
            assert a.owner(key) == b.owner(key)
            assert a.preference(key) == b.preference(key)

    def test_mapping_is_stable_across_releases(self):
        """Pinned golden values: a ring rebuilt by any process, any run,
        routes these keys identically.  If this test breaks, persisted
        placements would reshuffle on upgrade — change the ring only
        with a migration story."""
        ring = HashRing(["z00", "z01"], vnodes=64)
        owners = [ring.owner(f"client01/jobset-{i:04d}") for i in range(6)]
        assert owners == [ring.owner(f"client01/jobset-{i:04d}") for i in range(6)]
        assert set(owners) == {"z00", "z01"}  # both zones get traffic

    @settings(max_examples=30, deadline=None)
    @given(zones=_zone_sets, new_zone=_zone_name, keys=_keys)
    def test_adding_a_zone_remaps_only_toward_the_new_zone(
        self, zones, new_zone, keys
    ):
        """Consistent hashing's defining property: growing the ring
        moves a key only if the *new* zone claimed it — nothing
        reshuffles between surviving zones."""
        if new_zone in zones:
            return
        before = HashRing(zones)
        after = before.with_zone(new_zone)
        moved = 0
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                assert new == new_zone, (key, old, new)
                moved += 1
        # Expected remap fraction is ~1/(n+1); with 64 vnodes per zone
        # the variance is modest, so just bound it well below a full
        # reshuffle (a modulo-hash scheme would remap ~n/(n+1)).
        assert moved / len(keys) <= 0.5 + 1.0 / (len(zones) + 1)

    @settings(max_examples=30, deadline=None)
    @given(zones=st.lists(_zone_name, min_size=2, max_size=8, unique=True),
           keys=_keys)
    def test_removing_a_zone_remaps_only_its_own_keys(self, zones, keys):
        before = HashRing(zones)
        dead = before.owner(keys[0])  # remove a zone that owns something
        after = before.without_zone(dead)
        for key in keys:
            old = before.owner(key)
            if old == dead:
                assert after.owner(key) != dead
                # ...and lands on the next zone the old ring preferred:
                assert after.owner(key) == next(
                    z for z in before.preference(key) if z != dead
                )
            else:
                assert after.owner(key) == old

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederationConfig(n_zones=0)
        with pytest.raises(ValueError):
            FederationConfig(vnodes=0)
        with pytest.raises(ValueError):
            FederationConfig(staleness_s=-1.0)
        with pytest.raises(ValueError):
            FederationConfig(max_queued_per_machine=0)


# -- 1-zone differential (satellite 1) -----------------------------------------------


def _normalized_store_state(wrapper):
    out = {}
    for rid in wrapper.store.list_ids(wrapper.service_name):
        state = wrapper.store.load(wrapper.service_name, rid)
        state = {k: v for k, v in state.items() if k not in _TIME_KEYS}
        out[rid] = encode_state(state)
    return out


def _comparable_grid_state(tb):
    """Normalized stores of every service with host-independent state.

    The brokers are *excluded*: a federated run's subscription rows
    point consumers at different host names (root broker vs. central)
    by construction, and the zone broker additionally holds the root
    uplink — topology, not job-set semantics.
    """
    wrappers = {"Scheduler": tb.scheduler, "NodeInfo": tb.node_info}
    for name, es in tb.es.items():
        wrappers[f"ExecService@{name}"] = es
    for name, fss in tb.fss.items():
        wrappers[f"FileSystem@{name}"] = fss
    return {name: _normalized_store_state(w) for name, w in wrappers.items()}


def _run_fig3(federation, n_jobs=8, chain=False):
    tb = Testbed(
        n_machines=4, seed=11, machine_speeds=[1.0] * 4,
        start_utilization_services=False, federation=federation,
    )
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out.dat": PAYLOAD})
    )
    if federation is None:
        client = tb.make_client()
        runner = client.run_job_set
    else:
        fed = tb.make_federated_client()
        client = fed.client
        runner = fed.run_job_set_polled
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        inputs = (
            [FileRef(f"job{i-1}://out.dat", "prev.dat")] if chain and i else []
        )
        spec.add(
            JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe"),
                    inputs=inputs, outputs=["out.dat"] if chain else [])
        )
    outcome, jobset_epr, topic = tb.run(runner(spec))
    tb.settle()
    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = tb.scheduler.store.load("Scheduler", rid)
    dirs = state[QName(UVA, "job_dirs")]
    outputs = {
        name: tb.run(client.fetch_output(dir_epr, "out.dat")).to_bytes()
        for name, dir_epr in sorted(dirs.items())
    }
    return {
        "tb": tb,
        "outcome": outcome,
        "topic": topic,
        "outputs": outputs,
        "exit_codes": state[QName(UVA, "job_exit_codes")],
        "placements": state[QName(UVA, "job_machine")],
        "state": _comparable_grid_state(tb),
        "client_events": sorted(
            (note.topic, note.payload.tag.local)
            for note in client.listener.received
        ),
    }


class TestSingleZoneDifferential:
    """One-zone federation ≡ the single-scheduler path."""

    def _assert_equivalent(self, single, federated):
        assert federated["outcome"] == single["outcome"] == "completed"
        assert federated["topic"] == single["topic"]
        assert federated["outputs"] == single["outputs"]
        assert federated["exit_codes"] == single["exit_codes"]
        assert federated["placements"] == single["placements"]
        assert federated["state"] == single["state"]
        assert federated["client_events"] == single["client_events"]

    def test_independent_jobset_equivalent(self):
        single = _run_fig3(None)
        federated = _run_fig3(FederationConfig(n_zones=1))
        self._assert_equivalent(single, federated)
        # The federated run really went through the federation plumbing:
        tb = federated["tb"]
        assert [z.name for z in tb.zones] == ["z00"]
        assert tb.scheduler.zone == "z00"
        # ...but never crossed zones (there is only one):
        assert getattr(tb.scheduler, "cross_zone_dispatches", 0) == 0
        assert getattr(tb.scheduler, "jobsets_stolen", 0) == 0

    def test_chain_jobset_equivalent(self):
        """Dependencies exercise job_dirs fill-in and inter-FSS staging
        across the zone broker → root broker notification hierarchy."""
        single = _run_fig3(None, n_jobs=4, chain=True)
        federated = _run_fig3(FederationConfig(n_zones=1), n_jobs=4, chain=True)
        self._assert_equivalent(single, federated)

    def test_one_zone_ring_routes_everything_to_it(self):
        ring = HashRing(["z00"])
        for i in range(20):
            assert ring.owner(f"client01/jobset-{i:04d}") == "z00"


# -- federated topology behavior ------------------------------------------------------


def _federated_testbed(n_machines=4, config=None, **kwargs):
    tb = Testbed(
        n_machines=n_machines, seed=11,
        federation=config or FederationConfig(n_zones=2),
        start_utilization_services=False, **kwargs,
    )
    tb.programs.register(
        make_compute_program("work", 5.0, outputs={"out.dat": PAYLOAD})
    )
    return tb


def _spec_of(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"j{i}", executable=FileRef(exe, "job.exe")))
    return spec


class TestFederatedTopology:
    def test_int_shorthand_and_linux_exclusion(self):
        tb = Testbed(n_machines=2, federation=2,
                     start_utilization_services=False)
        assert isinstance(tb.federation, FederationConfig)
        assert tb.federation.n_zones == 2
        with pytest.raises(ValueError):
            Testbed(n_machines=2, federation=2, n_linux_machines=1)
        with pytest.raises(ValueError):
            Testbed(n_machines=1, federation=2)  # more zones than machines

    def test_machines_shard_round_robin(self):
        tb = _federated_testbed(n_machines=4)
        assert [m.name for m in tb.zones[0].machines] == ["node00", "node02"]
        assert [m.name for m in tb.zones[1].machines] == ["node01", "node03"]
        # every wrapper is zone-tagged for the obs layer
        for zone in tb.zones:
            for wrapper in (zone.broker, zone.node_info, zone.scheduler):
                assert wrapper.zone == zone.name
        assert tb.root_broker.zone == tb.aggregator.zone == "root"

    def test_jobs_complete_in_owning_zone(self):
        tb = _federated_testbed()
        fed = tb.make_federated_client()
        owner = fed.zone_for(f"{fed.client.host_name}/jobset-0001")
        spec = _spec_of(fed, tb, 4)
        outcome, _, _ = tb.run(fed.run_job_set_polled(spec, give_up_after=600.0))
        assert outcome == "completed"
        assert fed.steals == 0 and fed.submit_failovers == 0
        owning = next(z for z in tb.zones if z.name == owner)
        zone_machines = {m.name for m in owning.machines}
        # with ample local capacity every job stayed in the owning zone
        assert getattr(owning.scheduler, "cross_zone_dispatches", 0) == 0
        state_rid = owning.scheduler.store.list_ids("Scheduler")[0]
        placements = owning.scheduler.store.load("Scheduler", state_rid)[
            QName(UVA, "job_machine")
        ]
        assert set(placements.values()) <= zone_machines

    def test_full_zone_dispatches_cross_zone(self):
        """The tentpole scenario: the owning zone's machines are all at
        the in-flight cap, so dispatch consults the aggregator catalog
        and lands jobs on another zone's machines (trace step 12)."""
        tb = _federated_testbed(
            n_machines=2,
            config=FederationConfig(n_zones=2, max_queued_per_machine=1),
        )
        fed = tb.make_federated_client()
        spec = _spec_of(fed, tb, 4)
        outcome, _, _ = tb.run(fed.run_job_set_polled(spec, give_up_after=600.0))
        assert outcome == "completed"
        crossed = sum(
            getattr(z.scheduler, "cross_zone_dispatches", 0) for z in tb.zones
        )
        assert crossed > 0
        details = [e.detail for e in tb.trace.events if e.step == 12]
        assert any("consulting aggregator" in d for d in details)
        assert any("dispatched cross-zone" in d for d in details)

    def test_submission_fails_over_when_owner_zone_is_down(self):
        tb = _federated_testbed()
        fed = tb.make_federated_client()
        owner = fed.zone_for(f"{fed.client.host_name}/jobset-0001")
        owner_index = [z.name for z in tb.zones].index(owner)
        tb.partition_zone(owner_index)
        spec = _spec_of(fed, tb, 2)

        def scenario(env):
            sub = yield from fed.submit(spec)
            return sub

        sub = tb.run(scenario(tb.env))
        assert sub.zone != owner
        assert fed.submit_failovers == 1
        # the adopting scheduler saw a plain submission (failover at
        # submit time is not a steal — nothing was orphaned)
        adopter = next(z for z in tb.zones if z.name == sub.zone)
        assert getattr(adopter.scheduler, "jobsets_stolen", 0) == 0

    def test_federated_client_rejects_duplicate_routes(self):
        tb = _federated_testbed()
        route = ZoneRoute(
            "z00", tb.zones[0].scheduler.service_epr(), tb.zones[0].central.cert
        )
        with pytest.raises(ValueError):
            FederatedGridClient(tb.make_client(), [route, route])

    def test_make_federated_client_requires_federation(self):
        tb = Testbed(n_machines=1, start_utilization_services=False)
        with pytest.raises(ValueError):
            tb.make_federated_client()


class TestAggregatorStaleness:
    """The aggregator catalog's staleness contract."""

    def _get_all(self, tb, client):
        return tb.run(
            client.soap.call(
                tb.aggregator.service_epr(), SG, "GetAllProcessors",
                category="nis",
            )
        )

    def test_fresh_entries_served_from_cache(self):
        tb = _federated_testbed(config=FederationConfig(n_zones=2,
                                                        staleness_s=60.0))
        client = tb.make_client()
        catalog = self._get_all(tb, client)
        assert {p["name"] for p in catalog} == {f"node{i:02d}" for i in range(4)}
        assert {p["zone"] for p in catalog} == {"z00", "z01"}
        # seeded at assembly, well within staleness: no NIS traffic
        assert getattr(tb.aggregator, "catalog_refreshes", 0) == 0
        assert getattr(tb.aggregator, "catalog_stale_served", 0) == 0

    def test_stale_entries_refresh_inline(self):
        tb = _federated_testbed(config=FederationConfig(n_zones=2,
                                                        staleness_s=5.0))
        client = tb.make_client()
        tb.settle(10.0)  # age every entry past the staleness bound
        catalog = self._get_all(tb, client)
        assert len(catalog) == 4
        assert tb.aggregator.catalog_refreshes == 2  # one per zone
        # a second read within the bound hits the refreshed cache
        self._get_all(tb, client)
        assert tb.aggregator.catalog_refreshes == 2

    def test_dead_zone_is_served_stale_not_blocking(self):
        tb = _federated_testbed(config=FederationConfig(n_zones=2,
                                                        staleness_s=5.0))
        client = tb.make_client()
        tb.settle(10.0)
        tb.partition_zone(1)
        catalog = self._get_all(tb, client)
        # the live zone refreshed; the dead zone's last catalog survives
        assert {p["zone"] for p in catalog} == {"z00", "z01"}
        assert tb.aggregator.catalog_refreshes == 1
        assert tb.aggregator.catalog_stale_served == 1


class TestFederatedObservability:
    def test_zone_labels_and_counters_in_export(self):
        import json

        tb = Testbed(
            n_machines=2, seed=11, observability=True,
            start_utilization_services=False,
            federation=FederationConfig(n_zones=2, max_queued_per_machine=1),
        )
        tb.programs.register(
            make_compute_program("work", 5.0, outputs={"out.dat": PAYLOAD})
        )
        fed = tb.make_federated_client()
        spec = _spec_of(fed, tb, 4)
        outcome, _, _ = tb.run(fed.run_job_set_polled(spec, give_up_after=600.0))
        assert outcome == "completed"
        tb.settle()
        snapshot = json.loads(tb.obs.export_json())
        metrics = snapshot["metrics"]
        zones = {
            m["labels"].get("zone")
            for m in metrics
            if "zone" in m.get("labels", {})
        }
        assert {"z00", "z01", "root"} <= zones
        names = {m["name"] for m in metrics}
        assert "scheduler.cross_zone_dispatches" in names
