"""End-to-end integration tests: the Fig. 3 remote job execution flow."""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG


@pytest.fixture()
def testbed():
    tb = Testbed(n_machines=3, seed=7)
    tb.programs.register(
        make_compute_program(
            "stage1", 2.0, outputs={"output1": b"stage1 results"},
            required_inputs=["input.dat"],
        )
    )
    tb.programs.register(
        make_compute_program(
            "stage2", 1.0, outputs={"final.out": b"stage2 final"},
            required_inputs=["mid.dat"],
        )
    )
    tb.programs.register(make_compute_program("solo", 0.5, outputs={"out": b"solo"}))
    tb.programs.register(make_compute_program("badjob", 0.5, exit_code=9))
    return tb


def _single_job_spec(client, tb, program="solo"):
    spec = client.new_job_set()
    exe_url = client.add_program_binary(tb.programs.get(program))
    spec.add(JobSpec(name="job1", executable=FileRef(exe_url, "job.exe")))
    return spec


def _pipeline_spec(client, tb):
    """job1 produces output1; job2 consumes it as mid.dat."""
    spec = client.new_job_set()
    exe1 = client.add_program_binary(tb.programs.get("stage1"))
    exe2 = client.add_program_binary(tb.programs.get("stage2"))
    data_url = client.add_local_file("c:/data/input.dat", b"raw experiment data")
    spec.add(
        JobSpec(
            name="job1",
            executable=FileRef(exe1, "job.exe"),
            inputs=[FileRef(data_url, "input.dat")],
            outputs=["output1"],
        )
    )
    spec.add(
        JobSpec(
            name="job2",
            executable=FileRef(exe2, "job.exe"),
            inputs=[FileRef("job1://output1", "mid.dat")],
            outputs=["final.out"],
        )
    )
    return spec


class TestSingleJob:
    def test_runs_to_completion(self, testbed):
        client = testbed.make_client()
        outcome, jobset_epr, topic = testbed.run_job_set(
            client, _single_job_spec(client, testbed)
        )
        assert outcome == "completed"

    def test_output_retrievable_by_client(self, testbed):
        client = testbed.make_client()
        outcome, jobset_epr, topic = testbed.run_job_set(
            client, _single_job_spec(client, testbed)
        )
        # Find the job's dir EPR from the JobCreated notification.
        dir_epr = None
        for note in client.listener.received:
            event = parse_job_event(note.payload)
            if event.get("kind") == "JobCreated":
                dir_epr = event["dir_epr"]
        assert dir_epr is not None
        names = testbed.run(client.list_output_dir(dir_epr))
        assert "out" in names and "job.exe" in names
        content = testbed.run(client.fetch_output(dir_epr, "out"))
        assert content.to_bytes() == b"solo"

    def test_client_sees_progress_notifications(self, testbed):
        client = testbed.make_client()
        outcome, _, topic = testbed.run_job_set(
            client, _single_job_spec(client, testbed)
        )
        testbed.settle()
        messages = client.progress_messages(topic)
        assert f"{topic}/job1/created" in messages
        assert f"{topic}/job1/started" in messages
        assert f"{topic}/job1/exited" in messages
        assert f"{topic}/completed" in messages

    def test_failing_job_fails_the_set(self, testbed):
        client = testbed.make_client()
        outcome, _, _ = testbed.run_job_set(
            client, _single_job_spec(client, testbed, program="badjob")
        )
        assert outcome == "failed"

    def test_bad_credentials_fail(self, testbed):
        client = testbed.make_client(username="intruder", password="nope")
        outcome, _, _ = testbed.run_job_set(
            client, _single_job_spec(client, testbed)
        )
        assert outcome == "failed"


class TestPipelineJobSet:
    def test_dependency_pipeline_completes(self, testbed):
        client = testbed.make_client()
        outcome, jobset_epr, topic = testbed.run_job_set(
            client, _pipeline_spec(client, testbed)
        )
        assert outcome == "completed"

    def test_job2_starts_after_job1_exits(self, testbed):
        client = testbed.make_client()
        testbed.run_job_set(client, _pipeline_spec(client, testbed))
        testbed.settle()
        by_topic = {n.topic: n.at for n in client.listener.received}
        topic = sorted(by_topic)[0].split("/")[0]
        assert by_topic[f"{topic}/job1/exited"] <= by_topic[f"{topic}/job2/created"]

    def test_final_output_content_flows_through(self, testbed):
        client = testbed.make_client()
        outcome, jobset_epr, topic = testbed.run_job_set(
            client, _pipeline_spec(client, testbed)
        )
        assert outcome == "completed"
        dir_eprs = {}
        for note in client.listener.received:
            event = parse_job_event(note.payload)
            if event.get("kind") == "JobCreated":
                dir_eprs[event["job_name"]] = event["dir_epr"]
        final = testbed.run(client.fetch_output(dir_eprs["job2"], "final.out"))
        assert final.to_bytes() == b"stage2 final"
        # job2's working dir contains the staged intermediate.
        names = testbed.run(client.list_output_dir(dir_eprs["job2"]))
        assert "mid.dat" in names

    def test_jobset_status_rp(self, testbed):
        client = testbed.make_client()
        outcome, jobset_epr, topic = testbed.run_job_set(
            client, _pipeline_spec(client, testbed)
        )
        status = testbed.run(
            client.soap.get_resource_property(jobset_epr, QName(UVA, "Status"))
        )
        assert status == "Completed"
        progress = testbed.run(
            client.soap.get_resource_property(jobset_epr, QName(UVA, "Progress"))
        )
        assert progress["total"] == 2 and progress["done"] == 2


class TestFig3Trace:
    """Assert the ten-step §4.6 walkthrough happens in order."""

    def test_all_ten_steps_occur(self, testbed):
        client = testbed.make_client()
        testbed.run_job_set(client, _pipeline_spec(client, testbed))
        testbed.settle()
        steps = set(testbed.trace.steps())
        assert steps == {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

    def test_first_occurrence_order_matches_paper(self, testbed):
        client = testbed.make_client()
        testbed.run_job_set(client, _pipeline_spec(client, testbed))
        testbed.settle()
        order = testbed.trace.first_occurrence_order()
        # Step 9 (async broadcast) floats; the causal backbone must be
        # 1 -> 2 -> 3 -> 4 -> 5 -> 7 -> 8 -> 10, with 6 (inter-FSS fetch)
        # only during job2's staging, i.e. after job1 exited (10).
        backbone = [s for s in order if s in (1, 2, 3, 4, 5, 7, 8, 10)]
        assert backbone == [1, 2, 3, 4, 5, 7, 8, 10]
        events6 = testbed.trace.events_for_step(6)
        events10 = testbed.trace.events_for_step(10)
        assert events6, "inter-FSS transfer (step 6) never happened"
        assert events6[0].at >= events10[0].at

    def test_trace_format_readable(self, testbed):
        client = testbed.make_client()
        testbed.run_job_set(client, _single_job_spec(client, testbed))
        text = testbed.trace.format()
        assert "step  1" in text and "Scheduler" in text


class TestSchedulerBehaviour:
    def test_best_policy_prefers_fast_idle_machine(self, testbed):
        """All three jobs land on the fastest machine when it stays idle
        between them (sequential single jobs)."""
        client = testbed.make_client()
        speeds = {m.name: m.params.cpu_speed for m in testbed.machines}
        fastest = max(speeds, key=lambda name: (speeds[name], name))
        for _ in range(2):
            outcome, jobset_epr, topic = testbed.run_job_set(
                client, _single_job_spec(client, testbed)
            )
            assert outcome == "completed"
            testbed.settle(extra_time=3.0)  # let utilization reports settle
            machines = testbed.run(
                client.soap.get_resource_property(jobset_epr, QName(UVA, "Topic"))
            )
        # Inspect scheduler state directly: every job ran on the fastest.
        state_ids = testbed.scheduler.store.list_ids("Scheduler")
        jobset_ids = [rid for rid in state_ids if not rid.startswith("sub-")]
        for rid in jobset_ids:
            state = testbed.scheduler.store.load("Scheduler", rid)
            placement = state[QName(UVA, "job_machine")]
            assert all(m == fastest for m in placement.values())

    def test_kill_via_cancel(self, testbed):
        testbed.programs.register(make_compute_program("forever", 10_000.0))
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("forever"))
        spec.add(JobSpec(name="job1", executable=FileRef(exe, "job.exe")))

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(30.0)
            result = yield from client.soap.call(jobset_epr, UVA, "CancelJobSet")
            return result, jobset_epr

        result, jobset_epr = testbed.run(scenario())
        assert result == "cancelled"
        testbed.settle()
        status = testbed.run(
            client.soap.get_resource_property(jobset_epr, QName(UVA, "Status"))
        )
        assert status == "Failed"
        # No process still burning CPU anywhere.
        assert all(m.cpu.active_tasks == 0 for m in testbed.machines)

    def test_parallel_jobs_spread_when_fastest_busy(self, testbed):
        """Two independent long jobs should not both land on one machine
        (utilization feedback steers the second dispatch away)."""
        testbed.programs.register(make_compute_program("long", 50.0))
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("long"))
        spec.add(JobSpec(name="a", executable=FileRef(exe, "job.exe")))
        spec.add(JobSpec(name="b", executable=FileRef(exe, "job.exe")))
        outcome, jobset_epr, _ = testbed.run_job_set(client, spec)
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        state = testbed.scheduler.store.load("Scheduler", rid)
        placement = state[QName(UVA, "job_machine")]
        assert placement["a"] != placement["b"]


class TestJobResourceInterface:
    def test_status_and_cputime_rps(self, testbed):
        testbed.programs.register(make_compute_program("medium", 20.0))
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("medium"))
        spec.add(JobSpec(name="job1", executable=FileRef(exe, "job.exe")))

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(10.0)
            # Find the job EPR from notifications.
            job_epr = None
            for note in client.listener.received:
                event = parse_job_event(note.payload)
                if event.get("kind") == "JobStarted":
                    job_epr = event["job_epr"]
            assert job_epr is not None
            status = yield from client.soap.get_resource_property(
                job_epr, QName(UVA, "Status")
            )
            cpu = yield from client.soap.get_resource_property(
                job_epr, QName(UVA, "CpuTime")
            )
            outcome = yield from client.wait_for_completion(topic)
            exit_code = yield from client.soap.call(job_epr, UVA, "GetExitCode")
            return status, cpu, outcome, exit_code

        status, cpu, outcome, exit_code = testbed.run(scenario())
        assert status == "Running"
        assert 0.0 < cpu
        assert outcome == "completed"
        assert exit_code == 0

    def test_destroying_job_resource_kills_process(self, testbed):
        testbed.programs.register(make_compute_program("eternal", 10_000.0))
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("eternal"))
        spec.add(JobSpec(name="job1", executable=FileRef(exe, "job.exe")))

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(20.0)
            job_epr = None
            for note in client.listener.received:
                event = parse_job_event(note.payload)
                if event.get("kind") == "JobStarted":
                    job_epr = event["job_epr"]
            yield from client.soap.destroy(job_epr)
            return job_epr

        job_epr = testbed.run(scenario())
        testbed.settle(extra_time=5.0)
        assert all(m.cpu.active_tasks == 0 for m in testbed.machines)

    def test_network_traffic_accounted(self, testbed):
        client = testbed.make_client()
        testbed.run_job_set(client, _pipeline_spec(client, testbed))
        stats = testbed.network.stats
        assert stats.by_category["dispatch"] > 0
        assert stats.by_category["file-tcp"] > 0  # local:// staging
        assert stats.by_category["file-http"] > 0  # job1://output1 staging
        assert stats.by_category["notify"] > 0
