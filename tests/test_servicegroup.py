"""Tests for WS-ServiceGroup."""

import pytest

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsa import EndpointReference
from repro.wsrf import ServiceGroupService, WsrfClient, deploy
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.servicegroup import (
    CONTENT_RULE_RP,
    ENTRY_RP,
    ContentRuleViolation,
    parse_entries,
)
from repro.xmlx import NS, Element, QName

SG = NS.WSRF_SG


@pytest.fixture()
def fabric():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "registry-node")
    wrapper = deploy(ServiceGroupService, machine, "NodeInfo")
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, net, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def _content(name, util="0.5"):
    el = Element(QName(NS.UVACG, "ProcessorInfo"))
    el.subelement(QName(NS.UVACG, "Name"), text=name)
    el.subelement(QName(NS.UVACG, "Utilization"), text=util)
    return el


def _member(i):
    return EndpointReference(f"http://node{i}/ExecService")


class TestServiceGroup:
    def test_create_group_returns_epr(self, fabric):
        env, net, wrapper, client = fabric
        group = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        assert isinstance(group, EndpointReference)

    def test_add_and_list_entries(self, fabric):
        env, net, wrapper, client = fabric
        group = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        entry_eprs = []
        for i in range(3):
            entry = run(
                env,
                client.call(
                    group, SG, "Add",
                    {"member": _member(i), "content": _content(f"node{i}")},
                ),
            )
            entry_eprs.append(entry)
        assert len(set(entry_eprs)) == 3
        raw = run(env, client.get_resource_property(group, ENTRY_RP))
        entries = parse_entries(raw)
        assert len(entries) == 3
        members = [member.address for member, _, _ in entries]
        assert members == [f"http://node{i}/ExecService" for i in range(3)]
        # Content round-trips.
        assert entries[0][2].child_text(QName(NS.UVACG, "Name")) == "node0"

    def test_content_rule_enforced(self, fabric):
        env, net, wrapper, client = fabric
        rule = QName(NS.UVACG, "ProcessorInfo").clark()
        group = run(
            env,
            client.call(wrapper.service_epr(), SG, "CreateGroup", {"content_rule": rule}),
        )
        # Conforming content is accepted.
        run(env, client.call(group, SG, "Add",
                             {"member": _member(1), "content": _content("n1")}))
        # Violating content is rejected.
        with pytest.raises(ContentRuleViolation):
            run(
                env,
                client.call(
                    group, SG, "Add",
                    {"member": _member(2), "content": Element(QName(NS.UVACG, "Wrong"))},
                ),
            )
        assert run(env, client.get_resource_property(group, CONTENT_RULE_RP)) == rule

    def test_destroy_entry_removes_from_group(self, fabric):
        env, net, wrapper, client = fabric
        group = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        entry1 = run(env, client.call(group, SG, "Add",
                                      {"member": _member(1), "content": _content("n1")}))
        entry2 = run(env, client.call(group, SG, "Add",
                                      {"member": _member(2), "content": _content("n2")}))
        run(env, client.destroy(entry1))
        entries = parse_entries(run(env, client.get_resource_property(group, ENTRY_RP)))
        assert len(entries) == 1
        assert entries[0][0] == _member(2)

    def test_update_entry_content(self, fabric):
        env, net, wrapper, client = fabric
        group = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        entry = run(env, client.call(group, SG, "Add",
                                     {"member": _member(1), "content": _content("n1", "0.1")}))
        run(env, client.call(entry, SG, "UpdateContent",
                             {"content": _content("n1", "0.9")}))
        content = run(env, client.get_resource_property(entry, QName(SG, "EntryContent")))
        assert content.child_text(QName(NS.UVACG, "Utilization")) == "0.9"
        # The group view reflects the update too.
        entries = parse_entries(run(env, client.get_resource_property(group, ENTRY_RP)))
        assert entries[0][2].child_text(QName(NS.UVACG, "Utilization")) == "0.9"

    def test_kind_confusion_faults(self, fabric):
        env, net, wrapper, client = fabric
        group = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        entry = run(env, client.call(group, SG, "Add",
                                     {"member": _member(1), "content": _content("n1")}))
        # Add on an entry resource is a kind violation.
        with pytest.raises(BaseFault, match="applies to 'group'"):
            run(env, client.call(entry, SG, "Add",
                                 {"member": _member(2), "content": _content("n2")}))
        # UpdateContent on a group is too.
        with pytest.raises(BaseFault, match="applies to 'entry'"):
            run(env, client.call(group, SG, "UpdateContent", {"content": _content("x")}))

    def test_groups_are_isolated(self, fabric):
        env, net, wrapper, client = fabric
        g1 = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        g2 = run(env, client.call(wrapper.service_epr(), SG, "CreateGroup"))
        run(env, client.call(g1, SG, "Add", {"member": _member(1), "content": _content("n1")}))
        assert parse_entries(run(env, client.get_resource_property(g2, ENTRY_RP))) == []

    def test_parse_entries_tolerates_junk(self):
        assert parse_entries(None) == []
        assert parse_entries(["not an element"]) == []
