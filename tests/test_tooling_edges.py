"""Edge cases in the wrapper tooling and store/SQL integration."""

import pytest

from repro.db import execute_sql
from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetResourcePropertyPortType,
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG


class BaseDevice(ServiceSkeleton):
    """Inheritance: subclasses add methods/fields to a common base."""

    label = Resource(default="dev")

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Label(self) -> str:
        return self.label


@WSRFPortType(GetResourcePropertyPortType)
class Camera(BaseDevice):
    zoom = Resource(default=1)

    @ResourceProperty
    @property
    def Zoom(self) -> int:
        return self.zoom

    @WebMethod
    def ZoomIn(self) -> int:
        self.zoom = self.zoom + 1
        return self.zoom

    @WebMethod
    def Snapshot(self):
        """Returns a raw Element as a custom response body."""
        response = Element(QName(UVA, "SnapshotResponse"))
        response.subelement(QName(UVA, "Pixels"), text="...")
        return response


def _fabric():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "server")
    wrapper = deploy(Camera, machine, "Camera")
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, net, machine, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestInheritance:
    def test_inherited_methods_and_fields_work(self):
        env, net, machine, wrapper, client = _fabric()
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        assert run(env, client.call(epr, UVA, "Label")) == "dev"  # base method
        assert run(env, client.call(epr, UVA, "ZoomIn")) == 2  # subclass method
        assert run(env, client.get_resource_property(epr, QName(UVA, "Zoom"))) == 2

    def test_state_includes_base_and_subclass_fields(self):
        env, net, machine, wrapper, client = _fabric()
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(QName(UVA, "ResourceID"))
        state = wrapper.store.load("Camera", rid)
        assert QName(UVA, "label") in state and QName(UVA, "zoom") in state


class TestCustomResponses:
    def test_element_response_passthrough(self):
        env, net, machine, wrapper, client = _fabric()
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        body = Element(QName(UVA, "Snapshot"))
        response = run(env, client.invoke(epr, body))
        assert response.tag == QName(UVA, "SnapshotResponse")
        assert response.child_text(QName(UVA, "Pixels")) == "..."


class TestDeploymentEdges:
    def test_two_services_one_machine(self):
        env = Environment()
        net = Network(env)
        machine = Machine(net, "server")
        w1 = deploy(Camera, machine, "CamA")
        w2 = deploy(Camera, machine, "CamB")
        net.add_host("client")
        client = WsrfClient(net, "client")
        epr1 = run(env, client.call(w1.service_epr(), UVA, "Create"))
        epr2 = run(env, client.call(w2.service_epr(), UVA, "Create"))
        run(env, client.call(epr1, UVA, "ZoomIn"))
        # Stores are independent: CamB's resource is untouched.
        assert run(env, client.get_resource_property(epr2, QName(UVA, "Zoom"))) == 1

    def test_duplicate_path_rejected(self):
        env = Environment()
        net = Network(env)
        machine = Machine(net, "server")
        deploy(Camera, machine, "Cam")
        with pytest.raises(ValueError, match="already registered"):
            deploy(Camera, machine, "Cam")

    def test_same_class_two_machines_isolated(self):
        env = Environment()
        net = Network(env)
        m1, m2 = Machine(net, "a"), Machine(net, "b")
        w1, w2 = deploy(Camera, m1, "Cam"), deploy(Camera, m2, "Cam")
        net.add_host("client")
        client = WsrfClient(net, "client")
        epr1 = run(env, client.call(w1.service_epr(), UVA, "Create"))
        # The EPR binds to machine a; machine b has no such resource.
        rid = epr1.get(QName(UVA, "ResourceID"))
        from repro.wsa import EndpointReference
        from repro.wsrf import ResourceUnknownFault

        foreign = EndpointReference(w2.address, {QName(UVA, "ResourceID"): rid})
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(foreign, UVA, "ZoomIn"))


class TestOdbcFidelity:
    """The blob store really is 'any ODBC compliant database': its rows
    are reachable through the SQL dialect, exactly as WSRF.NET's state
    would be through ODBC."""

    def test_resources_table_sql_queryable(self):
        env, net, machine, wrapper, client = _fabric()
        for _ in range(3):
            run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rows = execute_sql(
            wrapper.store.db,
            "SELECT resource_id FROM resources WHERE service = ?",
            ["Camera"],
        )
        assert len(rows) == 3
        # And the blobs are opaque binary, per the design being critiqued
        # in section 5 of the paper.
        blobs = execute_sql(
            wrapper.store.db,
            "SELECT state FROM resources WHERE service = ?",
            ["Camera"],
        )
        assert all(isinstance(r["state"], bytes) for r in blobs)

    def test_sql_delete_reflected_in_wsrf(self):
        env, net, machine, wrapper, client = _fabric()
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(QName(UVA, "ResourceID"))
        # A DBA deletes the row out from under the service...
        deleted = execute_sql(
            wrapper.store.db, "DELETE FROM resources WHERE resource_id = ?", [rid]
        )
        assert deleted == 1
        from repro.wsrf import ResourceUnknownFault

        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(epr, UVA, "ZoomIn"))
