"""Chaos tests: the grid under seeded link-level fault injection.

The fault-tolerance layer's contract, stated as properties:

* **Liveness under loss** — with client/service retries, broker
  redelivery and the Scheduler watchdog enabled, a multi-job set driven
  by Status-RP polling completes despite every non-loopback link
  dropping messages, and every job's output is byte-identical to the
  fault-free result.
* **Determinism of failure** — with retries disabled, the same fault
  seed produces exactly the same failure at exactly the same simulated
  time, run after run (the injector burns one RNG draw per lossy-link
  message, nothing else).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridapp import FaultToleranceConfig, FileRef, JobSpec, Testbed
from repro.net import DeliveryError, RetryPolicy
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG

PAYLOAD = b"chaos-proof payload"

#: drop probability the FT layer is expected to absorb (acceptance bar)
DROP_THRESHOLD = 0.20


def _build(n_jobs, drop, fault_seed, retries, perf=None):
    policy = RetryPolicy(
        max_attempts=5, base_delay_s=0.2, backoff_factor=2.0,
        max_delay_s=2.0, timeout_s=30.0,
    )
    tb = Testbed(
        n_machines=4,
        seed=11,
        retry_policy=policy if retries else None,
        fault_tolerance=(
            FaultToleranceConfig(watchdog_period=5.0, stuck_after=20.0)
            if retries
            else None
        ),
        broker_redelivery=policy if retries else None,
        perf=perf,
    )
    if drop:
        tb.network.inject_faults(drop_probability=drop, seed=fault_seed)
    tb.programs.register(
        make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    return tb, client, spec


def _job_dirs(tb, jobset_epr):
    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = tb.scheduler.store.load("Scheduler", rid)
    return state[QName(UVA, "job_dirs")]


class TestChaosCompletion:
    def test_ten_jobs_complete_under_twenty_percent_drop(self):
        """The acceptance bar: 10 jobs, 20% loss on every non-loopback
        link, retries enabled -> the set completes and every output is
        byte-identical to the fault-free payload."""
        tb, client, spec = _build(
            n_jobs=10, drop=DROP_THRESHOLD, fault_seed=3, retries=True
        )
        outcome, jobset_epr, _ = tb.run(
            client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        assert outcome == "completed"
        assert tb.network.stats.drops > 0, "chaos must actually have bitten"
        dirs = _job_dirs(tb, jobset_epr)
        assert len(dirs) == 10
        for name, dir_epr in sorted(dirs.items()):
            content = tb.run(client.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name

    @settings(max_examples=6, deadline=None)
    @given(
        drop=st.floats(min_value=0.02, max_value=DROP_THRESHOLD),
        fault_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_completion_property_below_threshold(self, drop, fault_seed):
        """Any drop rate up to the threshold, any fault seed: a 5-job
        set still completes with byte-identical outputs."""
        tb, client, spec = _build(
            n_jobs=5, drop=drop, fault_seed=fault_seed, retries=True
        )
        outcome, jobset_epr, _ = tb.run(
            client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        assert outcome == "completed"
        for name, dir_epr in sorted(_job_dirs(tb, jobset_epr).items()):
            content = tb.run(client.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name

    def test_fault_free_run_matches_chaos_outputs(self):
        """The no-chaos control: identical payloads, so the chaos runs
        above really did reproduce the fault-free result."""
        tb, client, spec = _build(n_jobs=5, drop=0.0, fault_seed=0, retries=False)
        outcome, jobset_epr, _ = tb.run(client.run_job_set(spec))
        assert outcome == "completed"
        for name, dir_epr in sorted(_job_dirs(tb, jobset_epr).items()):
            content = tb.run(client.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name


class TestChaosWithPerfLayer:
    """Regression: retried/duplicated messages under loss must never
    leave the performance layer's caches stale — no resurrecting a
    destroyed resource, no serving pre-retry state."""

    def _run_with_perf(self, n_jobs=10):
        from repro.gridapp import PerfConfig

        tb, client, spec = _build(
            n_jobs=n_jobs, drop=DROP_THRESHOLD, fault_seed=3, retries=True,
            perf=PerfConfig(),
        )
        outcome, jobset_epr, _ = tb.run(
            client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        return tb, client, outcome, jobset_epr

    def test_completes_at_threshold_with_caching(self):
        tb, client, outcome, jobset_epr = self._run_with_perf()
        assert outcome == "completed"
        assert tb.network.stats.drops > 0, "chaos must actually have bitten"
        dirs = _job_dirs(tb, jobset_epr)
        assert len(dirs) == 10
        for name, dir_epr in sorted(dirs.items()):
            content = tb.run(client.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name

    def test_no_stale_or_resurrected_cache_entries(self):
        """After the chaotic run, every service's cache agrees with its
        database byte-for-byte and holds no destroyed resources."""
        tb, _, outcome, _ = self._run_with_perf(n_jobs=6)
        assert outcome == "completed"
        tb.settle()
        wrappers = [tb.scheduler, tb.broker, tb.node_info]
        wrappers += list(tb.fss.values()) + list(tb.es.values())
        for wrapper in wrappers:
            wrapper.store.assert_coherent()
        assert tb.scheduler.store.hits > 0, "the cache must have been exercised"


class TestRestartUnderFire:
    """Crash-restart durability under packet loss (docs/durability.md):
    20% drop on every lossy link PLUS a mid-run host bounce — of the
    central machine (broker + scheduler) or of a worker node — and the
    job set still completes with byte-identical outputs, with the
    broker's redelivery/drop accounting consistent after the bounce."""

    def _build(self, n_jobs=8):
        # Restart survival needs a retry budget that outlasts the down
        # window; the plain chaos policy's ~3s total backoff does not.
        policy = RetryPolicy(
            max_attempts=8, base_delay_s=0.5, backoff_factor=2.0,
            max_delay_s=3.0, timeout_s=30.0,
        )
        tb = Testbed(
            n_machines=4,
            seed=11,
            retry_policy=policy,
            fault_tolerance=FaultToleranceConfig(
                watchdog_period=5.0, stuck_after=20.0
            ),
            broker_redelivery=policy,
        )
        tb.network.inject_faults(drop_probability=DROP_THRESHOLD, seed=3)
        tb.programs.register(
            make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
        )
        client = tb.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(tb.programs.get("work"))
        for i in range(n_jobs):
            spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
        return tb, client, spec

    def _run(self, host, at, down_for=3.0):
        tb, client, spec = self._build()
        tb.restart_host(host, at=at, down_for=down_for)
        outcome, jobset_epr, _ = tb.run(
            client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        return tb, client, outcome, jobset_epr

    def _assert_all_outputs(self, tb, client, jobset_epr, n_jobs=8):
        dirs = _job_dirs(tb, jobset_epr)
        assert len(dirs) == n_jobs
        for name, dir_epr in sorted(dirs.items()):
            content = tb.run(client.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name

    def test_broker_scheduler_bounce_under_drop_completes(self):
        tb, client, outcome, jobset_epr = self._run("uvacg-central", at=6.0)
        assert outcome == "completed"
        assert tb.network.stats.drops > 0, "chaos must actually have bitten"
        assert tb.scheduler.restarts == 1
        assert tb.broker.restarts == 1
        self._assert_all_outputs(tb, client, jobset_epr)

    def test_node_bounce_under_drop_completes(self):
        tb, client, outcome, jobset_epr = self._run("node02", at=4.0)
        assert outcome == "completed"
        assert tb.es["node02"].restarts == 1
        self._assert_all_outputs(tb, client, jobset_epr)

    def test_redelivery_accounting_consistent_after_bounce(self):
        """After the broker bounce: every live subscription is a
        persisted resource, and nothing is simultaneously live and
        counted as dropped (the restore reconciles a rolled-back drop)."""
        tb, client, outcome, _ = self._run("uvacg-central", at=10.0)
        assert outcome == "completed"
        tb.settle()
        producer = tb.broker.notification_producer
        live = set(producer.subscriptions)
        persisted = set(tb.broker.store.list_ids("NotificationBroker"))
        assert live <= persisted
        assert live.isdisjoint(producer.dropped_subscribers)
        # Dropped rids were destroyed: none may linger in the store.
        assert persisted.isdisjoint(producer.dropped_subscribers)


class TestFederationUnderFire:
    """The federation layer under chaos (docs/federation.md).

    Two scenarios beyond the single-site chaos suite:

    * **Zone partition + work stealing** — 20% drop everywhere, plus the
      job set's owning zone severed from the rest of the network
      mid-run.  The federated client's Status polls hit a dead
      Scheduler, exhaust retries and *steal* the set to the next zone on
      the ring, whose Scheduler adopts and completes it.
    * **Zone-scheduler bounce** — the owning zone's central machine
      crash-restarts mid-run; client retries bridge the window, the
      restarted Scheduler re-adopts its in-flight job sets
      (``wsrf_recover``), and the set completes with no steal.
    """

    def _build(self, n_jobs=6, drop=DROP_THRESHOLD, fault_seed=3):
        from repro.gridapp import FederationConfig

        # Same stronger policy as TestRestartUnderFire: the retry budget
        # must outlast a zone outage before the client concludes the
        # zone is dead (steal) or the host is back (bounce).
        policy = RetryPolicy(
            max_attempts=8, base_delay_s=0.5, backoff_factor=2.0,
            max_delay_s=3.0, timeout_s=30.0,
        )
        tb = Testbed(
            n_machines=4,
            seed=11,
            federation=FederationConfig(n_zones=2),
            retry_policy=policy,
            fault_tolerance=FaultToleranceConfig(
                watchdog_period=5.0, stuck_after=20.0
            ),
            broker_redelivery=policy,
        )
        if drop:
            tb.network.inject_faults(drop_probability=drop, seed=fault_seed)
        tb.programs.register(
            make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
        )
        fed = tb.make_federated_client()
        spec = fed.new_job_set()
        exe = fed.add_program_binary(tb.programs.get("work"))
        for i in range(n_jobs):
            spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
        owner = fed.zone_for(f"{fed.client.host_name}/jobset-0001")
        owner_index = [z.name for z in tb.zones].index(owner)
        return tb, fed, spec, owner_index

    def _fetch_all(self, tb, fed, sub, n_jobs):
        adopter = next(z for z in tb.zones if z.name == sub.zone)
        rid = sub.jobset_epr.get(QName(UVA, "ResourceID"))
        state = adopter.scheduler.store.load("Scheduler", rid)
        dirs = state[QName(UVA, "job_dirs")]
        assert len(dirs) == n_jobs
        for name, dir_epr in sorted(dirs.items()):
            content = tb.run(fed.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name

    def test_zone_partition_midrun_steals_and_completes(self):
        n_jobs = 6
        tb, fed, spec, owner_index = self._build(n_jobs=n_jobs)
        owner = tb.zones[owner_index].name

        def scenario(env):
            sub = yield from fed.submit(spec)
            assert sub.zone == owner
            # sever the whole owning zone once work is in flight
            yield env.timeout(4.0)
            tb.partition_zone(owner_index)
            outcome, sub = yield from fed.poll_until_complete(
                sub, period=3.0, give_up_after=2000.0
            )
            return outcome, sub

        outcome, sub = tb.run(scenario(tb.env))
        assert outcome == "completed"
        assert tb.network.stats.drops > 0, "chaos must actually have bitten"
        assert fed.steals == 1
        assert sub.zone != owner
        adopter = next(z for z in tb.zones if z.name == sub.zone)
        assert adopter.scheduler.jobsets_stolen == 1
        # the orphaned jobs were re-run on the surviving zone's machines
        self._fetch_all(tb, fed, sub, n_jobs)

    def test_zone_scheduler_bounce_readopts_without_steal(self):
        n_jobs = 6
        tb, fed, spec, owner_index = self._build(n_jobs=n_jobs)
        zone = tb.zones[owner_index]
        tb.restart_host(zone.central.name, at=6.0, down_for=3.0)
        outcome, jobset_epr, _ = tb.run(
            fed.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        assert outcome == "completed"
        assert zone.scheduler.restarts == 1
        assert zone.broker.restarts == 1
        # re-adoption, not migration: the set finished where it started
        assert fed.steals == 0
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        dirs = zone.scheduler.store.load("Scheduler", rid)[QName(UVA, "job_dirs")]
        assert len(dirs) == n_jobs
        for name, dir_epr in sorted(dirs.items()):
            content = tb.run(fed.fetch_output(dir_epr, "out.dat"))
            assert content.to_bytes() == PAYLOAD, name


class TestChaosDeterminism:
    @staticmethod
    def _run_without_retries(fault_seed):
        tb, client, spec = _build(
            n_jobs=10, drop=DROP_THRESHOLD, fault_seed=fault_seed, retries=False
        )
        try:
            outcome, _, _ = tb.run(
                client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
            )
        except DeliveryError as exc:
            outcome = f"fault:{exc}"
        return outcome, tb.env.now, tb.network.stats.drops

    @settings(max_examples=6, deadline=None)
    @given(fault_seed=st.integers(min_value=0, max_value=2**16))
    def test_retries_disabled_faults_deterministically(self, fault_seed):
        """Same seed, no retries: same outcome (usually a fault), same
        simulated clock, same drop count — run twice."""
        first = self._run_without_retries(fault_seed)
        second = self._run_without_retries(fault_seed)
        assert first == second

    def test_retries_disabled_surfaces_the_fault(self):
        """At the threshold a 10-job fail-fast set essentially always
        dies; pin one seed known to fault on the very first exchange."""
        outcome, at, drops = self._run_without_retries(3)
        assert outcome.startswith("fault:")
        assert drops > 0

    def test_different_seeds_differ(self):
        """The seed is really driving the fault pattern."""
        runs = {self._run_without_retries(seed) for seed in (1, 2, 3, 4)}
        assert len(runs) > 1
