"""Tests for the wall-clock profiler and structured event log.

Three layers: unit tests of :class:`WallClockProfiler` under an
injected deterministic clock, integration tests proving that profiling
a full testbed run never perturbs simulated results (byte-identical
exports), and CLI/satellite coverage — the ``tail`` subcommand, robust
error exits, and the span-correlation edge cases.
"""

import json

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.net import Network
from repro.obs import (
    PROFILE_STAGES,
    Observability,
    ObsEventLog,
    SpanRecorder,
    WallClockProfiler,
    parse_jsonl,
    render_event_tail,
    render_profile,
)
from repro.osim.programs import make_compute_program
from repro.sim import Environment


class FakeClock:
    """A hand-cranked perf_counter stand-in for deterministic tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _stage(snapshot, name):
    for entry in snapshot["stages"]:
        if entry["stage"] == name:
            return entry
    raise AssertionError(f"no stage {name!r} in {snapshot['stages']}")


# -- unit: attribution model --------------------------------------------------------


class TestWallClockProfiler:
    def test_nested_regions_split_self_and_cumulative(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        prof.enter("a")
        clock.advance(1.0)
        prof.enter("b")          # 1s charged to (a,)
        clock.advance(2.0)
        prof.exit()              # 2s charged to (a, b)
        clock.advance(3.0)
        prof.exit()              # 3s charged to (a,)
        snap = prof.snapshot()
        a = _stage(snap, "a")
        b = _stage(snap, "b")
        assert a["self_s"] == pytest.approx(4.0)
        assert a["cum_s"] == pytest.approx(6.0)
        assert b["self_s"] == pytest.approx(2.0)
        assert b["cum_s"] == pytest.approx(2.0)
        assert snap["meta"]["busy_s"] == pytest.approx(6.0)
        assert snap["meta"]["wall_s"] == pytest.approx(6.0)
        assert snap["meta"]["open_regions"] == 0
        assert a["self_share"] == pytest.approx(4.0 / 6.0)

    def test_time_outside_regions_is_not_attributed(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        with prof.region("a"):
            clock.advance(1.0)
        clock.advance(10.0)      # nothing open: unprofiled gap
        with prof.region("a"):
            clock.advance(2.0)
        snap = prof.snapshot()
        assert _stage(snap, "a")["self_s"] == pytest.approx(3.0)
        assert snap["meta"]["busy_s"] == pytest.approx(3.0)
        assert snap["meta"]["wall_s"] == pytest.approx(13.0)

    def test_recursive_stage_counted_once_in_cumulative(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        prof.enter("a")
        clock.advance(1.0)
        prof.enter("a")          # recursion: path (a, a)
        clock.advance(2.0)
        prof.exit()
        prof.exit()
        a = _stage(prof.snapshot(), "a")
        assert a["self_s"] == pytest.approx(3.0)
        # cum sums each path once — recursion must not double-count
        assert a["cum_s"] == pytest.approx(3.0)
        assert a["calls"] == 2

    def test_exit_without_region_raises(self):
        prof = WallClockProfiler(clock=FakeClock())
        with pytest.raises(ValueError):
            prof.exit()

    def test_tree_paths_are_sorted_and_rooted(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        with prof.region("sim.dispatch"):
            with prof.region("net.request"):
                clock.advance(1.0)
            with prof.region("db.load"):
                clock.advance(1.0)
        paths = [tuple(entry["path"]) for entry in prof.snapshot()["tree"]]
        assert paths == sorted(paths)
        assert all(p[0] == "sim.dispatch" for p in paths)

    def test_meters_and_counters_from_stage_calls(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        with prof.region("sim.dispatch"):
            clock.advance(1.0)
            for _ in range(3):
                with prof.region("soap.encode"):
                    clock.advance(1.0)
            with prof.region("soap.parse"):
                clock.advance(0.5)
            with prof.region("db.load"):
                clock.advance(0.25)
            with prof.region("db.save"):
                clock.advance(0.25)
        snap = prof.snapshot()
        assert snap["counters"] == {
            "events": 1,
            "envelopes_encoded": 3,
            "envelopes_parsed": 1,
            "store_loads": 1,
            "store_saves": 1,
        }
        busy = snap["meta"]["busy_s"]
        assert busy == pytest.approx(5.0)
        assert snap["meters"]["events_per_s"] == pytest.approx(1 / busy)
        assert snap["meters"]["envelopes_per_s"] == pytest.approx(4 / busy)
        assert snap["meters"]["store_ops_per_s"] == pytest.approx(2 / busy)

    def test_empty_profiler_snapshot_is_safe(self):
        snap = WallClockProfiler(clock=FakeClock()).snapshot()
        assert snap["meta"]["busy_s"] == 0.0
        assert snap["meters"]["events_per_s"] == 0.0
        assert snap["stages"] == [] and snap["tree"] == []

    def test_reset_discards_data(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)
        with prof.region("a"):
            clock.advance(1.0)
        prof.reset()
        assert prof.busy_s() == 0.0
        assert prof.snapshot()["tree"] == []


class TestWrap:
    def test_wrap_charges_only_resumption_time(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)

        def inner():
            clock.advance(1.0)   # work during first resumption
            yield "x"
            clock.advance(2.0)   # work during second resumption
            return "done"

        gen = prof.wrap("net.request", inner())
        assert next(gen) == "x"
        clock.advance(100.0)     # suspended: someone else's time
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        assert stop.value.value == "done"
        entry = _stage(prof.snapshot(), "net.request")
        assert entry["self_s"] == pytest.approx(3.0)
        assert entry["calls"] == 2  # one per resumption

    def test_interleaved_wrapped_generators_do_not_cross_charge(self):
        clock = FakeClock()
        prof = WallClockProfiler(clock=clock)

        def worker(dt):
            for _ in range(2):
                clock.advance(dt)
                yield None

        a = prof.wrap("net.request", worker(1.0))
        b = prof.wrap("net.oneway", worker(10.0))
        next(a), next(b), next(a), next(b)
        snap = prof.snapshot()
        assert _stage(snap, "net.request")["self_s"] == pytest.approx(2.0)
        assert _stage(snap, "net.oneway")["self_s"] == pytest.approx(20.0)

    def test_wrap_forwards_thrown_exceptions(self):
        prof = WallClockProfiler(clock=FakeClock())

        def inner():
            try:
                yield 1
            except KeyError:
                return "caught"

        gen = prof.wrap("wsrf.dispatch", inner())
        next(gen)
        with pytest.raises(StopIteration) as stop:
            gen.throw(KeyError("boom"))
        assert stop.value.value == "caught"

    def test_wrap_survives_close(self):
        prof = WallClockProfiler(clock=FakeClock())
        finalized = []

        def inner():
            try:
                yield 1
            finally:
                finalized.append(True)

        gen = prof.wrap("wsrf.dispatch", inner())
        next(gen)
        gen.close()
        assert finalized == [True]
        # the region stack unwound cleanly
        assert prof.snapshot()["meta"]["open_regions"] == 0

    def test_wrap_propagates_inner_exception(self):
        prof = WallClockProfiler(clock=FakeClock())

        def inner():
            yield 1
            raise RuntimeError("inner failure")

        gen = prof.wrap("wsrf.dispatch", inner())
        next(gen)
        with pytest.raises(RuntimeError):
            gen.send(None)
        assert prof.snapshot()["meta"]["open_regions"] == 0


# -- integration: profiled testbed runs ---------------------------------------------


def _run_jobset(profile, n_jobs=4, event_log=False):
    tb = Testbed(n_machines=3, seed=11, machine_speeds=[1.0] * 3,
                 observability=True, profile=profile)
    if event_log:
        tb.obs.enable_event_log()
    tb.programs.register(
        make_compute_program("work", 5.0, outputs={"out": b"x"})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = tb.run_job_set(client, spec)
    assert outcome == "completed"
    tb.settle()
    return tb


@pytest.fixture(scope="module")
def profiled_pair():
    return _run_jobset(profile=False), _run_jobset(profile=True)


class TestProfiledRun:
    def test_profiling_never_perturbs_simulated_results(self, profiled_pair):
        off, on = profiled_pair
        assert on.obs.export_json() == off.obs.export_json()
        assert on.env.now == off.env.now
        assert on.network.stats.messages == off.network.stats.messages
        assert [
            (e.at, e.step, e.actor) for e in on.trace.events
        ] == [(e.at, e.step, e.actor) for e in off.trace.events]

    def test_profile_covers_the_stage_taxonomy(self, profiled_pair):
        _, on = profiled_pair
        snap = on.prof.snapshot()
        seen = {entry["stage"] for entry in snap["stages"]}
        assert seen <= set(PROFILE_STAGES)
        # the workload exercises the whole pipeline
        assert {
            "sim.dispatch", "net.request", "net.oneway", "wsrf.dispatch",
            "soap.encode", "soap.parse", "db.load", "db.save", "wsn.publish",
        } <= seen
        assert snap["meta"]["open_regions"] == 0
        assert snap["meta"]["busy_s"] > 0
        assert snap["meters"]["events_per_s"] > 0
        assert snap["meters"]["envelopes_per_s"] > 0
        assert snap["meters"]["store_ops_per_s"] > 0

    def test_all_host_work_roots_under_sim_dispatch(self, profiled_pair):
        _, on = profiled_pair
        for entry in on.prof.snapshot()["tree"]:
            assert entry["path"][0] == "sim.dispatch"

    def test_shares_sum_to_one(self, profiled_pair):
        _, on = profiled_pair
        snap = on.prof.snapshot()
        total = sum(entry["self_share"] for entry in snap["stages"])
        assert total == pytest.approx(1.0)
        # sim.dispatch is the root: its cum is the whole busy time
        root = _stage(snap, "sim.dispatch")
        assert root["cum_s"] == pytest.approx(snap["meta"]["busy_s"])

    def test_envelope_counters_match_message_traffic(self, profiled_pair):
        _, on = profiled_pair
        counters = on.prof.snapshot()["counters"]
        # every parsed envelope was encoded by someone in-process
        assert counters["envelopes_parsed"] > 0
        assert counters["envelopes_encoded"] > 0
        assert counters["events"] > counters["envelopes_parsed"]

    def test_disabled_mode_adds_no_wrapper_frames(self):
        env = Environment()
        net = Network(env)
        net.add_host("a"), net.add_host("b")
        gen = net.request("a", "http://b/x", "payload")
        # prof off: callers get the impl generator itself, unwrapped
        assert gen.gi_code.co_name == "_request_impl"
        gen.close()
        net.prof = WallClockProfiler(clock=FakeClock())
        wrapped = net.request("a", "http://b/x", "payload")
        assert wrapped.gi_code.co_name == "wrap"
        wrapped.close()

    def test_profile_snapshot_is_json_serializable(self, profiled_pair):
        _, on = profiled_pair
        text = json.dumps(on.prof.snapshot(), sort_keys=True)
        assert "sim.dispatch" in text

    def test_render_profile_sections(self, profiled_pair):
        _, on = profiled_pair
        report = render_profile(on.prof.snapshot())
        assert "wall-clock profile" in report
        assert "events/s" in report
        assert "stage tree" in report
        assert "wsrf.dispatch" in report


# -- structured event log -----------------------------------------------------------


class TestEventLog:
    def test_field_ordering_is_deterministic(self):
        env = Environment()
        log = ObsEventLog(env)
        log.emit("custom", zebra=1, alpha=2, mid=3)
        line = log.to_jsonl().splitlines()[0]
        event = json.loads(line)
        assert list(event) == ["seq", "t", "kind", "alpha", "mid", "zebra"]
        assert event["seq"] == 1 and event["kind"] == "custom"

    def test_reserved_fields_rejected(self):
        log = ObsEventLog(Environment())
        with pytest.raises(ValueError):
            log.emit("custom", seq=9)

    def test_span_lifecycle_mirrored(self):
        env = Environment()
        obs = Observability(env)
        log = obs.enable_event_log()
        assert obs.enable_event_log() is log  # idempotent
        span = obs.start_span("wsrf.dispatch", attrs={"service": "S"})
        obs.finish(span)
        kinds = [event["kind"] for event in log.events]
        assert kinds == ["span.start", "span.finish"]
        assert log.events[0]["span"] == span.span_id
        assert log.events[1]["dur"] == 0.0

    def test_identical_runs_emit_identical_bytes(self):
        a = _run_jobset(profile=False, n_jobs=2, event_log=True)
        b = _run_jobset(profile=False, n_jobs=2, event_log=True)
        text = a.obs.events.to_jsonl()
        assert text == b.obs.events.to_jsonl()
        assert len(a.obs.events) > 0

    def test_parse_jsonl_roundtrip_and_errors(self):
        env = Environment()
        log = ObsEventLog(env)
        log.emit("one", x=1)
        log.emit("two", y="z")
        events = parse_jsonl(log.to_jsonl())
        assert [event["kind"] for event in events] == ["one", "two"]
        with pytest.raises(ValueError, match="line 1"):
            parse_jsonl("not json\n")
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl('{"kind": "ok"}\n[1, 2]\n')

    def test_render_event_tail(self):
        log = ObsEventLog(Environment())
        for i in range(30):
            log.emit("tick", i=i)
        report = render_event_tail(log.events, n=5)
        assert "5 of 30" in report
        assert "i=29" in report and "i=24" not in report
        assert render_event_tail([], n=5).endswith("(none)")


# -- span correlation edges (satellite) ---------------------------------------------


class TestSpanCorrelationEdges:
    def test_orphan_span_gets_no_parent(self):
        rec = SpanRecorder(Environment())
        orphan = rec.start("iis.handle", message_id="mid-without-sender")
        assert orphan.parent_id is None
        rec.finish(orphan)
        assert rec.open_spans() == []

    def test_closed_parent_does_not_adopt_late_spans(self):
        rec = SpanRecorder(Environment())
        sender = rec.start("client.invoke", message_id="m1")
        rec.finish(sender)
        # the sender's stack entry is gone: a late hop must not
        # mis-parent to the finished span
        late = rec.start("net.request", message_id="m1")
        assert late.parent_id is None
        rec.finish(late)

    def test_out_of_order_close_degrades_gracefully(self):
        env = Environment()
        rec = SpanRecorder(env)
        outer = rec.start("client.invoke", message_id="m1")
        inner = rec.start("net.request", message_id="m1")
        assert inner.parent_id == outer.span_id
        # close the OUTER first (out of order)
        rec.finish(outer)
        # the inner span is still open, still closable, and new spans on
        # the same message id still parent to it (the innermost OPEN one)
        sibling = rec.start("iis.handle", message_id="m1")
        assert sibling.parent_id == inner.span_id
        rec.finish(sibling)
        rec.finish(inner)
        assert rec.open_spans() == []
        assert all(s.duration is not None for s in rec.spans)

    def test_finish_subtree_after_out_of_order_close_is_idempotent(self):
        rec = SpanRecorder(Environment())
        root = rec.start("wsrf.dispatch", message_id="m1")
        child = rec.start("wsrf.dispatch.method", parent=root)
        rec.finish(root)
        rec.finish_subtree(root)  # must not raise, must close the child
        assert child.finished
        assert rec.open_spans() == []


# -- CLI (satellite: robust errors + tail) ------------------------------------------


class TestCliRobustness:
    def test_render_missing_file_exits_2(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["render", str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read" in err
        assert "Traceback" not in err

    def test_render_corrupt_file_exits_2(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["render", str(bad)]) == 2
        assert "not an observability export" in capsys.readouterr().err
        bad.write_text('{"spans": []}', encoding="utf-8")  # valid JSON, wrong shape
        assert main(["render", str(bad)]) == 2
        assert "no 'metrics' key" in capsys.readouterr().err

    def test_tail_missing_and_corrupt_exit_2(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["tail", str(tmp_path / "missing.jsonl")]) == 2
        assert "error: cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("... not jsonl ...", encoding="utf-8")
        assert main(["tail", str(bad)]) == 2
        assert "not a JSONL event log" in capsys.readouterr().err

    def test_demo_profile_events_and_tail(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        events = tmp_path / "events.jsonl"
        code = main(["--machines", "1", "--jobs", "1", "--profile",
                     "--events", str(events)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "wall-clock profile" in printed
        assert "events/s" in printed
        assert main(["tail", str(events), "-n", "3"]) == 0
        assert "span.finish" in capsys.readouterr().out
