"""Crash-restart durability: the testbed survives host bounces.

The checkpoint/restore model (docs/durability.md): a crash freezes the
host's *disk* — every resource-store row written so far — and loses all
process memory (caches, locks, watchers, OS processes, un-flushed
notification batches).  ``Testbed.restart_host`` kills a host mid-run
and boots it from that checkpoint; services re-adopt in-flight work via
``wsrf_recover``.  The write-ahead ordering contract (WAL001) makes the
recovery sound: state is persisted before any reply or notification
acknowledging it leaves the host, so nothing a peer observed can be
rolled back by the crash.

Proof layers in this file:

- **Crash-point sweep** (the headline): Hypothesis picks which host to
  bounce and when; 6-job sets must still complete with byte-identical
  outputs and zero exit codes.
- **Differential restart-then-idle**: a run that bounces an idle host
  between two job-set phases must end in the *same* normalized store
  state and job outcomes as an undisturbed run — the checkpoint is the
  state, exactly.
- **WAL unit tests**: a notification queued via ``send_after_persist``
  never leaves before its state is durable; a crash inside the dispatch
  window discards both the unpersisted state and the queued send.
- **Observed-run determinism**: two identical seeded restart runs with
  observability and profiling on export byte-identical JSON.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.resource_store import encode_state
from repro.gridapp import (
    FaultToleranceConfig,
    FileRef,
    JobSpec,
    PerfConfig,
    Testbed,
)
from repro.net import DeliveryError, Network, RetryPolicy
from repro.osim import Machine, MachineParams
from repro.osim.programs import make_compute_program
from repro.sim import Environment
from repro.wsn.base_notification import build_notify_body
from repro.wsrf import (
    Resource,
    ServiceSkeleton,
    WebMethod,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG

PAYLOAD = b"restart-proof payload"

#: restart survival needs retry budgets that outlast the down window
RESTART_RETRY = RetryPolicy(
    max_attempts=8, base_delay_s=0.5, backoff_factor=2.0,
    max_delay_s=3.0, timeout_s=30.0,
)

FT = FaultToleranceConfig(watchdog_period=5.0, stuck_after=20.0)

#: run-relative artifacts excluded from state comparisons (see
#: tests/test_perf_equivalence.py for the rationale)
_TIME_KEYS = {QName(UVA, "job_dispatched_at"), QName(UVA, "pid")}


def _normalized_store_state(wrapper):
    out = {}
    for rid in wrapper.store.list_ids(wrapper.service_name):
        state = wrapper.store.load(wrapper.service_name, rid)
        state = {k: v for k, v in state.items() if k not in _TIME_KEYS}
        out[rid] = encode_state(state)
    return out


def _final_grid_state(tb):
    wrappers = {"Scheduler": tb.scheduler, "NotificationBroker": tb.broker,
                "NodeInfo": tb.node_info}
    for name, es in tb.es.items():
        wrappers[f"ExecService@{name}"] = es
    for name, fss in tb.fss.items():
        wrappers[f"FileSystem@{name}"] = fss
    return {name: _normalized_store_state(w) for name, w in wrappers.items()}


def _make_testbed(duration=10.0, **kwargs):
    kwargs.setdefault("retry_policy", RESTART_RETRY)
    kwargs.setdefault("fault_tolerance", FT)
    kwargs.setdefault("broker_redelivery", RESTART_RETRY)
    tb = Testbed(n_machines=4, seed=11, machine_speeds=[1.0] * 4, **kwargs)
    tb.programs.register(
        make_compute_program("work", duration, outputs={"out.dat": PAYLOAD})
    )
    return tb


def _spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    return spec


def _run_polled(tb, client, spec):
    outcome, jobset_epr, topic = tb.run(
        client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
    )
    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = tb.scheduler.store.load("Scheduler", rid)
    outputs = {
        name: tb.run(client.fetch_output(dir_epr, "out.dat")).to_bytes()
        for name, dir_epr in sorted(state[QName(UVA, "job_dirs")].items())
    }
    return outcome, outputs, state


class TestCrashPointSweep:
    """The headline: any host, any time — job sets still complete."""

    @settings(max_examples=12, deadline=None)
    @given(
        host=st.sampled_from(
            ["node00", "node01", "node02", "node03", "uvacg-central"]
        ),
        at=st.floats(min_value=1.0, max_value=45.0),
    )
    def test_jobs_survive_any_crash_point(self, host, at):
        tb = _make_testbed()
        client = tb.make_client()
        tb.restart_host(host, at=at, down_for=3.0)
        outcome, outputs, state = _run_polled(tb, client, _spec(client, tb, 6))
        assert outcome == "completed"
        assert set(outputs) == {f"job{i:02d}" for i in range(6)}
        assert all(content == PAYLOAD for content in outputs.values())
        exit_codes = state[QName(UVA, "job_exit_codes")]
        assert set(exit_codes) == set(outputs)
        assert all(code == 0 for code in exit_codes.values())
        tb.settle()

    def test_scheduler_restart_readopts_inflight_jobsets(self):
        """Bouncing the central host mid-run exercises Scheduler
        re-adoption and broker subscription rebuild specifically."""
        tb = _make_testbed()
        client = tb.make_client()
        tb.restart_host("uvacg-central", at=6.0, down_for=3.0)
        outcome, outputs, _ = _run_polled(tb, client, _spec(client, tb, 6))
        assert outcome == "completed"
        assert all(content == PAYLOAD for content in outputs.values())
        assert tb.scheduler.restarts == 1
        assert tb.broker.restarts == 1
        assert getattr(tb.scheduler, "jobsets_readopted", 0) >= 1
        # The broker's in-memory mirror agrees with its store after the
        # bounce: every live subscription is persisted and vice versa.
        producer = tb.broker.notification_producer
        persisted = set(tb.broker.store.list_ids("NotificationBroker"))
        assert set(producer.subscriptions) <= persisted

    def test_node_restart_redispatches_lost_jobs(self):
        """A node bounced while executing loses its running jobs; the
        watchdog re-dispatches them and the set still completes."""
        tb = _make_testbed()
        client = tb.make_client()
        tb.restart_host("node01", at=8.0, down_for=3.0)
        outcome, outputs, _ = _run_polled(tb, client, _spec(client, tb, 6))
        assert outcome == "completed"
        assert all(content == PAYLOAD for content in outputs.values())
        assert tb.es["node01"].restarts == 1


class TestDifferentialRestartIdle:
    """Bouncing an idle host must be invisible in the final state."""

    def _two_phase(self, restart, perf=None, observability=False,
                   profile=False):
        tb = _make_testbed(duration=5.0, perf=perf,
                           observability=observability, profile=profile)
        client = tb.make_client()
        out1 = _run_polled(tb, client, _spec(client, tb, 4))
        tb.settle()
        mark = tb.env.now
        if restart:
            proc = tb.restart_host("node01", at=mark + 2.0, down_for=5.0)
            tb.env.run(until=proc)
            if perf is not None:
                # Satellite: the blob caches must be coherent right after
                # every restart, before any post-restart traffic.
                tb.es["node01"].store.assert_coherent()
                tb.fss["node01"].store.assert_coherent()
        # Both runs resume phase 2 at the same simulated instant.
        tb.env.run(until=mark + 20.0)
        out2 = _run_polled(tb, client, _spec(client, tb, 4))
        tb.settle()
        return tb, out1, out2

    def _assert_equivalent(self, plain, bounced):
        tb_a, a1, a2 = plain
        tb_b, b1, b2 = bounced
        for (oa, outa, _), (ob, outb, _) in ((a1, b1), (a2, b2)):
            assert oa == ob == "completed"
            assert outa == outb
        assert _final_grid_state(tb_a) == _final_grid_state(tb_b)

    def test_restart_then_idle_matches_undisturbed(self):
        self._assert_equivalent(
            self._two_phase(restart=False), self._two_phase(restart=True)
        )

    def test_restart_then_idle_matches_with_perf_layer(self):
        """Same equivalence with caching/elision on — restore must
        invalidate the blob cache, not serve pre-restart state."""
        self._assert_equivalent(
            self._two_phase(restart=False, perf=PerfConfig()),
            self._two_phase(restart=True, perf=PerfConfig()),
        )

    def test_observed_restart_run_exports_deterministically(self):
        """Two identical seeded restart runs with observability and the
        wall-clock profiler on export byte-identical obs JSON."""
        tb1, _, _ = self._two_phase(restart=True, observability=True,
                                    profile=True)
        tb2, _, _ = self._two_phase(restart=True, observability=True,
                                    profile=True)
        assert tb1.obs.export_json() == tb2.obs.export_json()
        named = tb1.obs.spans.named("host.restart")
        assert len(named) == 1
        assert tb1.obs.spans.named("wsrf.recover"), "recovery spans missing"
        reg = tb1.obs.collect()
        restarts = {
            labels.get("service"): metric.value
            for _name, labels, metric in reg.query("host.restarts")
        }
        assert restarts.get("ExecService") == 1


# -- write-ahead ordering unit tests ------------------------------------------------


class Announcer(ServiceSkeleton):
    """Minimal service exercising send_after_persist semantics."""

    done = Resource(default=False)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Finish(self) -> str:
        self.done = True
        body = build_notify_body(
            "t/done", Element(QName(UVA, "Done")), self.wsrf.my_epr()
        )
        self.wsrf.send_after_persist(self.wsrf.my_epr(), body)
        return "ok"

    @WebMethod
    def AnnounceOnly(self) -> str:
        """Sends without mutating state (write-elision path)."""
        body = build_notify_body(
            "t/ping", Element(QName(UVA, "Ping")), self.wsrf.my_epr()
        )
        self.wsrf.send_after_persist(self.wsrf.my_epr(), body)
        return "ok"


def _wal_fabric(db_access_s=0.0008, perf=None):
    env = Environment()
    net = Network(env)
    machine = Machine(
        net, "server", params=MachineParams(db_access_s=db_access_s)
    )
    wrapper = deploy(Announcer, machine, "Announcer", perf=perf)
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, net, machine, wrapper, client


def _drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def _notify_count(net):
    return net.stats.by_category.get("notify", 0)


class TestWriteAheadContract:
    def test_notification_waits_for_db_save(self):
        """At the instant the queued Notify first hits the wire, the
        state it announces is already in the store."""
        env, net, machine, wrapper, client = _wal_fabric(db_access_s=0.5)
        epr = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(QName(UVA, "ResourceID"))
        env.process(client.call(epr, UVA, "Finish"))
        while _notify_count(net) == 0:
            env.step()
        state = wrapper.store.load("Announcer", rid)
        assert state[QName(UVA, "done")] is True

    def test_crash_inside_dispatch_discards_state_and_send(self):
        """A bounce during the db_save window: the caller sees a reset,
        nothing was persisted, and the queued Notify never left."""
        env, net, machine, wrapper, client = _wal_fabric(db_access_s=2.0)
        host = machine.host
        epr = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(QName(UVA, "ResourceID"))
        start = env.now

        def bounce(env):
            # db_load ends ~start+2; the method is instant; the crash
            # lands inside the db_save delay (~start+2 .. start+4).
            yield env.timeout(3.0)
            snap = host.snapshot()
            host.down = True
            yield env.timeout(1.0)
            host.restore(snap)
            host.down = False

        env.process(bounce(env))
        with pytest.raises(DeliveryError):
            _drive(env, client.call(epr, UVA, "Finish"))
        assert env.now >= start + 3.0
        assert _notify_count(net) == 0
        state = wrapper.store.load("Announcer", rid)
        assert state[QName(UVA, "done")] is False
        assert host.boot_epoch == 1
        # The client's retry succeeds against the restored host and the
        # deferred send finally goes out — at-least-once end to end.
        assert _drive(env, client.call(epr, UVA, "Finish")) == "ok"
        env.run(until=env.now + 5.0)
        assert _notify_count(net) == 1
        assert wrapper.store.load("Announcer", rid)[QName(UVA, "done")] is True

    def test_elided_write_still_flushes_outbox(self):
        """PR 5's write elision skips the db_save stage when nothing
        changed; the WAL flush must still run (the state the send
        describes was already durable)."""
        from repro.perf import PerfConfig as PerfConfigDirect

        env, net, machine, wrapper, client = _wal_fabric(
            perf=PerfConfigDirect(state_cache=True, write_elision=True,
                                  notification_batch_window_s=0.0,
                                  nis_pass_cache=False)
        )
        epr = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        _drive(env, client.call(epr, UVA, "AnnounceOnly"))
        _drive(env, client.call(epr, UVA, "AnnounceOnly"))
        env.run(until=env.now + 5.0)
        assert wrapper.writes_elided >= 1
        assert _notify_count(net) == 2


class TestRestartPrimitives:
    """Wrapper/host snapshot-restore mechanics outside a full grid."""

    def test_restore_rolls_back_to_checkpoint(self):
        env, net, machine, wrapper, client = _wal_fabric()
        host = machine.host
        epr = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(QName(UVA, "ResourceID"))
        snap = host.snapshot()
        _drive(env, client.call(epr, UVA, "Finish"))
        env.run(until=env.now + 1.0)
        assert wrapper.store.load("Announcer", rid)[QName(UVA, "done")] is True
        host.restore(snap)
        assert wrapper.store.load("Announcer", rid)[QName(UVA, "done")] is False
        assert wrapper.restarts == 1
        assert host.boot_epoch == 1

    def test_rid_allocator_restored_with_checkpoint(self):
        """Resources created after the checkpoint vanish on restore and
        their ids are reused — no collisions, no gaps."""
        env, net, machine, wrapper, client = _wal_fabric()
        host = machine.host
        epr1 = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        snap = host.snapshot()
        epr2 = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        host.restore(snap)
        epr3 = _drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid2 = epr2.get(QName(UVA, "ResourceID"))
        rid3 = epr3.get(QName(UVA, "ResourceID"))
        assert rid2 == rid3  # the id the dead boot burned is reissued
        assert wrapper.store.exists("Announcer", rid3)
        assert epr1.get(QName(UVA, "ResourceID")) != rid3

    def test_restart_host_unknown_name_raises(self):
        tb = _make_testbed()
        with pytest.raises(KeyError):
            tb.restart_host("no-such-machine")
