"""Direct coverage for gridapp.tracing helpers and gridapp.report rendering."""

from collections import namedtuple

from repro.gridapp.report import (
    JobSetReport,
    JobTimeline,
    RecoveryEvent,
    build_report,
    render_gantt,
    render_run_metrics,
    render_summary,
)
from repro.gridapp.tracing import EventTrace, record, trace_of
from repro.net import Network
from repro.sim import Environment
from repro.xmlx import NS, Element, QName

Note = namedtuple("Note", "topic at payload")


def _fabric_with_trace():
    env = Environment()
    net = Network(env)
    net.trace = EventTrace(env)
    return env, net


class TestTraceOf:
    def test_finds_trace_on_network(self):
        env, net = _fabric_with_trace()
        assert trace_of(net) is net.trace

    def test_unwraps_machine_like_objects(self):
        env, net = _fabric_with_trace()

        class FakeMachine:
            network = net

        assert trace_of(FakeMachine()) is net.trace

    def test_none_when_no_trace_attached(self):
        env = Environment()
        net = Network(env)
        assert trace_of(net) is None


class TestRecord:
    def test_record_appends_event(self):
        env, net = _fabric_with_trace()
        record(net, 3, "Scheduler", "run single job")
        assert net.trace.steps() == [3]
        event = net.trace.events[0]
        assert (event.step, event.actor, event.detail) == (3, "Scheduler", "run single job")
        assert event.at == env.now

    def test_record_is_a_noop_without_trace(self):
        env = Environment()
        net = Network(env)
        record(net, 1, "Client")  # must not raise or create a trace
        assert trace_of(net) is None


class TestEventTrace:
    def _populated(self):
        env, net = _fabric_with_trace()
        trace = net.trace
        trace.record(1, "Client", "submit")
        env.run(until=1.5)
        trace.record(2, "Scheduler", "query NIS")
        trace.record(1, "Client", "submit again")
        return trace

    def test_events_for_step_filters(self):
        trace = self._populated()
        assert [e.detail for e in trace.events_for_step(1)] == ["submit", "submit again"]
        assert trace.events_for_step(9) == []

    def test_first_occurrence_order_dedupes(self):
        trace = self._populated()
        assert trace.first_occurrence_order() == [1, 2]
        assert trace.steps() == [1, 2, 1]

    def test_format_lines_carry_time_step_actor(self):
        trace = self._populated()
        lines = trace.format().splitlines()
        assert len(lines) == 3
        assert "step  1" in lines[0] and "Client" in lines[0]
        assert "1.5000s" in lines[1] and "step  2" in lines[1]

    def test_clear(self):
        trace = self._populated()
        trace.clear()
        assert trace.events == [] and trace.format() == ""


class TestBuildReport:
    def test_recovery_and_terminal_events(self):
        payload = Element(QName(NS.UVACG, "JobRecovery"))
        payload.set("job", "job0")
        payload.set("from", "node01")
        done = Element(QName(NS.UVACG, "JobSetDone"))
        report = build_report(
            [
                Note("js-1/recovery", 4.0, payload),
                Note("js-2/other", 4.5, done),  # other topic: ignored
                Note("js-1/completed", 9.0, done),
            ],
            "js-1",
        )
        assert report.outcome == "completed"
        assert report.submitted_at == 4.0 and report.finished_at == 9.0
        assert report.makespan_s == 5.0
        assert report.total_recoveries == 1
        assert report.jobs["job0"].recoveries == [RecoveryEvent(4.0, "node01")]


class TestRenderGantt:
    def _report(self):
        report = JobSetReport(topic="js-1", submitted_at=0.0, finished_at=10.0,
                              outcome="completed")
        report.jobs["ok"] = JobTimeline(
            "ok", created_at=0.0, started_at=2.0, exited_at=8.0, exit_code=0,
            machine_hint="node00",
        )
        report.jobs["bad"] = JobTimeline(
            "bad", created_at=1.0, started_at=3.0, exited_at=10.0, exit_code=2,
            machine_hint="node01",
        )
        report.jobs["bad"].recoveries.append(RecoveryEvent(5.0, "node00"))
        return report

    def test_bars_have_fixed_width_and_markers(self):
        text = render_gantt(self._report(), width=20)
        lines = text.splitlines()
        bars = [line for line in lines if "|" in line and "-" not in line]
        assert all(line.count("|") == 2 for line in bars)
        assert all(len(line.split("|")[1]) == 20 for line in bars)
        ok_line = next(line for line in bars if " ok" in line)
        bad_line = next(line for line in bars if "bad" in line)
        assert "." in ok_line and "#" in ok_line
        assert "X" in bad_line  # non-zero exit marker
        assert "R" in bad_line  # recovery marker

    def test_columns_clamp_at_edges(self):
        # exited exactly at the window end must land on the last column,
        # never index out of the bar (the classic off-by-one).
        report = JobSetReport(topic="js", submitted_at=0.0, finished_at=1.0)
        report.jobs["j"] = JobTimeline(
            "j", created_at=0.0, started_at=0.0, exited_at=1.0, exit_code=1
        )
        text = render_gantt(report, width=5)
        bar = text.splitlines()[1].split("|")[1]
        assert len(bar) == 5
        assert bar[-1] == "X"

    def test_unfinished_job_renders_open_ended(self):
        report = JobSetReport(topic="js", submitted_at=0.0)
        report.jobs["j"] = JobTimeline("j", created_at=0.0)  # still staging
        text = render_gantt(report, width=10)
        assert "staging" in text

    def test_empty_report(self):
        assert "no job events" in render_gantt(JobSetReport(topic="js"))


class TestRenderSummary:
    def test_lists_jobs_and_recovery_totals(self):
        report = JobSetReport(topic="js-1", submitted_at=0.0, finished_at=4.0,
                              outcome="completed")
        report.jobs["a"] = JobTimeline(
            "a", created_at=0.0, started_at=1.0, exited_at=2.0, exit_code=0
        )
        report.jobs["a"].recoveries.append(RecoveryEvent(1.5, "node00"))
        text = render_summary(report)
        assert "recovered x1" in text
        assert "recoveries: 1" in text
        assert "makespan: 4.00s" in text


class TestRenderRunMetrics:
    def test_reads_from_observability(self):
        from repro.obs import Observability

        env = Environment()
        net = Network(env)
        obs = Observability(env).attach(net)
        net.stats.record("soap.tcp", 100, "rpc")
        obs.registry.observe("wsrf.dispatch_s", 0.004, service="S")
        obs.registry.observe("wsrf.dispatch.db_load_s", 0.001, service="S")
        text = render_run_metrics(obs)
        assert "messages: 1" in text
        assert "soap.tcp: 1" in text
        assert "wsrf.dispatch.db_load" in text
