"""Differential harness: the performance layer changes latencies only.

``Testbed(perf=PerfConfig())`` turns on state caching, write elision,
batched notification fan-out and NIS pass caching.  The layer's whole
contract is *outcome equivalence*: the same job sets must produce
byte-identical results, trace content and final resource state as the
unoptimized pipeline — only simulated latencies (and the message count)
may differ.  This file is the proof:

- full Fig. 3 job sets (independent and dependency-chained) run with
  the layer on vs. off, comparing outcomes, output bytes, trace
  multisets and normalized final store state;
- chaos scenarios (20% link drop + retries + watchdog) with caching on
  must still complete with byte-identical outputs, never serving stale
  state or resurrecting destroyed resources;
- Hypothesis coherence properties drive random create/load/save/
  destroy/scan_query interleavings against a plain
  :class:`BlobResourceStore` oracle, including destroy-then-recreate
  of the same resource id.

Trace *times* and message counts are excluded from the comparisons by
design: elided DB delays shift every later timestamp, and batching
collapses fan-out messages — that is the point of the layer.  What must
never change is which events happen, in which causal order, with which
values.  docs/performance.md documents this contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    BlobResourceStore,
    CachedResourceStore,
    DbError,
    NoSuchResource,
)
from repro.db.resource_store import encode_state
from repro.gridapp import (
    FaultToleranceConfig,
    FileRef,
    JobSpec,
    PerfConfig,
    Testbed,
)
from repro.net import RetryPolicy
from repro.osim.programs import make_compute_program
from repro.perf import PerfConfig as PerfConfigDirect
from repro.wsn import build_notify_batch_body, parse_notify_body
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG

PAYLOAD = b"perf-equivalence payload"

#: resource-state keys whose values are run-relative artifacts, not
#: semantics: simulated timestamps, and OS pids (allocated from a
#: process-global counter, so even two identical back-to-back runs get
#: different pids)
_TIME_KEYS = {QName(UVA, "job_dispatched_at"), QName(UVA, "pid")}


def _normalized_store_state(wrapper):
    """{rid: encoded state bytes} with timestamp-valued keys dropped."""
    out = {}
    for rid in wrapper.store.list_ids(wrapper.service_name):
        state = wrapper.store.load(wrapper.service_name, rid)
        state = {k: v for k, v in state.items() if k not in _TIME_KEYS}
        out[rid] = encode_state(state)
    return out


def _final_grid_state(tb):
    """Normalized state of every service store in the testbed."""
    wrappers = {"Scheduler": tb.scheduler, "NotificationBroker": tb.broker,
                "NodeInfo": tb.node_info}
    for name, es in tb.es.items():
        wrappers[f"ExecService@{name}"] = es
    for name, fss in tb.fss.items():
        wrappers[f"FileSystem@{name}"] = fss
    return {name: _normalized_store_state(w) for name, w in wrappers.items()}


def _trace_content(tb):
    """Trace events without their timestamps (order preserved per actor)."""
    return sorted((e.step, e.actor, e.detail) for e in tb.trace.events)


def _make_testbed(perf, **kwargs):
    tb = Testbed(
        n_machines=4, seed=11, machine_speeds=[1.0] * 4, perf=perf, **kwargs
    )
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out.dat": PAYLOAD})
    )
    tb.programs.register(
        make_compute_program("chain", 10.0, outputs={"out.dat": PAYLOAD})
    )
    return tb


def _independent_spec(client, tb, n_jobs=8):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    return spec


def _chain_spec(client, tb, n_jobs=4):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("chain"))
    for i in range(n_jobs):
        inputs = [] if i == 0 else [FileRef(f"job{i-1}://out.dat", "prev.dat")]
        spec.add(
            JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe"),
                    inputs=inputs, outputs=["out.dat"])
        )
    return spec


def _run_jobset(perf, make_spec):
    tb = _make_testbed(perf)
    client = tb.make_client()
    outcome, jobset_epr, topic = tb.run_job_set(client, make_spec(client, tb))
    tb.settle()
    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = tb.scheduler.store.load("Scheduler", rid)
    dirs = state[QName(UVA, "job_dirs")]
    outputs = {
        name: tb.run(client.fetch_output(dir_epr, "out.dat")).to_bytes()
        for name, dir_epr in sorted(dirs.items())
    }
    exit_codes = state[QName(UVA, "job_exit_codes")]
    events = [
        (note.topic, note.payload.tag.local)
        for note in client.listener.received
    ]
    return {
        "tb": tb,
        "outcome": outcome,
        "outputs": outputs,
        "exit_codes": exit_codes,
        "placements": state[QName(UVA, "job_machine")],
        "trace": _trace_content(tb),
        "state": _final_grid_state(tb),
        "client_events": events,
    }


class TestDifferentialFig3:
    """The tentpole: full Fig. 3 job sets, layer on vs. off."""

    def _assert_equivalent(self, off, on):
        assert on["outcome"] == off["outcome"] == "completed"
        assert on["outputs"] == off["outputs"]
        assert on["exit_codes"] == off["exit_codes"]
        assert on["placements"] == off["placements"]
        assert on["trace"] == off["trace"]
        assert on["state"] == off["state"]
        # The client hears the same events; batching may interleave
        # deliveries across topics differently but never reorders or
        # drops within the run (fault-free fabric here).
        assert sorted(on["client_events"]) == sorted(off["client_events"])

    def test_independent_jobset_equivalent(self):
        off = _run_jobset(None, _independent_spec)
        on = _run_jobset(PerfConfig(), _independent_spec)
        self._assert_equivalent(off, on)
        # ...and the optimizations actually engaged:
        tb = on["tb"]
        assert tb.scheduler.store.hits > 0
        assert tb.scheduler.writes_elided > 0
        assert tb.scheduler.loads_elided > 0
        assert getattr(tb.scheduler, "nis_polls_elided", 0) > 0
        batcher = tb.broker.notification_producer.batcher
        assert batcher.batches_sent > 0
        assert batcher.notifications_batched > batcher.batches_sent
        # The headline effect: strictly fewer central messages.
        assert (
            tb.network.stats.messages
            < off["tb"].network.stats.messages
        )

    def test_chain_jobset_equivalent(self):
        """Dependencies exercise job_dirs fill-in and inter-FSS staging."""
        off = _run_jobset(None, _chain_spec)
        on = _run_jobset(PerfConfig(), _chain_spec)
        self._assert_equivalent(off, on)

    def test_caches_remain_coherent_after_run(self):
        on = _run_jobset(PerfConfig(), _independent_spec)
        tb = on["tb"]
        wrappers = [tb.scheduler, tb.broker, tb.node_info]
        wrappers += list(tb.es.values()) + list(tb.fss.values())
        for wrapper in wrappers:
            assert isinstance(wrapper.store, CachedResourceStore), wrapper.path
            wrapper.store.assert_coherent()

    def test_each_mechanism_is_independently_equivalent(self):
        """Flipping one knob at a time keeps equivalence (localizes a
        regression to the mechanism that broke it)."""
        off = _run_jobset(None, _independent_spec)
        codec_off = dict(codec_decode_cache=False, codec_envelope_cache=False)
        for knob in (
            PerfConfigDirect(state_cache=True, write_elision=False,
                             notification_batch_window_s=0.0,
                             nis_pass_cache=False, **codec_off),
            PerfConfigDirect(state_cache=False, write_elision=True,
                             notification_batch_window_s=0.0,
                             nis_pass_cache=False, **codec_off),
            PerfConfigDirect(state_cache=False, write_elision=False,
                             notification_batch_window_s=0.05,
                             nis_pass_cache=False, **codec_off),
            PerfConfigDirect(state_cache=False, write_elision=False,
                             notification_batch_window_s=0.0,
                             nis_pass_cache=True, **codec_off),
            PerfConfigDirect(state_cache=False, write_elision=False,
                             notification_batch_window_s=0.0,
                             nis_pass_cache=False,
                             codec_decode_cache=True,
                             codec_envelope_cache=False),
            PerfConfigDirect(state_cache=False, write_elision=False,
                             notification_batch_window_s=0.0,
                             nis_pass_cache=False,
                             codec_decode_cache=False,
                             codec_envelope_cache=True),
        ):
            on = _run_jobset(knob, _independent_spec)
            self._assert_equivalent(off, on)


class TestDifferentialChaos:
    """Chaos scenarios with the layer on: outcomes still correct.

    Fault injection draws one RNG value per lossy-link message, so the
    perf layer's different message sequence yields a *different* drop
    pattern — run-to-run state equality is not defined here.  What must
    hold: completion, byte-identical outputs, and cache coherence (no
    stale reads, no resurrected resources).
    """

    def _chaos_testbed(self, perf, drop=0.20, fault_seed=3):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.2, backoff_factor=2.0,
            max_delay_s=2.0, timeout_s=30.0,
        )
        tb = Testbed(
            n_machines=4,
            seed=11,
            retry_policy=policy,
            fault_tolerance=FaultToleranceConfig(
                watchdog_period=5.0, stuck_after=20.0
            ),
            broker_redelivery=policy,
            perf=perf,
        )
        tb.network.inject_faults(drop_probability=drop, seed=fault_seed)
        tb.programs.register(
            make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
        )
        return tb

    def _run_chaos(self, perf, n_jobs=8):
        tb = self._chaos_testbed(perf)
        client = tb.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(tb.programs.get("work"))
        for i in range(n_jobs):
            spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
        outcome, jobset_epr, _ = tb.run(
            client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
        )
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        state = tb.scheduler.store.load("Scheduler", rid)
        dirs = state[QName(UVA, "job_dirs")]
        outputs = {
            name: tb.run(client.fetch_output(dir_epr, "out.dat")).to_bytes()
            for name, dir_epr in sorted(dirs.items())
        }
        return tb, outcome, outputs

    def test_chaos_with_perf_layer_completes_identically(self):
        tb_off, outcome_off, outputs_off = self._run_chaos(None)
        tb_on, outcome_on, outputs_on = self._run_chaos(PerfConfig())
        assert outcome_off == outcome_on == "completed"
        assert tb_on.network.stats.drops > 0, "chaos must actually have bitten"
        assert outputs_on == outputs_off
        assert set(outputs_on) == {f"job{i:02d}" for i in range(8)}
        assert all(content == PAYLOAD for content in outputs_on.values())

    def test_chaos_caches_stay_coherent(self):
        """Retried dispatches and watchdog re-dispatches never leave a
        cache stale or holding a destroyed resource."""
        tb, outcome, _ = self._run_chaos(PerfConfig())
        assert outcome == "completed"
        wrappers = [tb.scheduler, tb.broker, tb.node_info]
        wrappers += list(tb.es.values()) + list(tb.fss.values())
        for wrapper in wrappers:
            wrapper.store.assert_coherent()


# -- property-based cache coherence (satellite 1) -----------------------------------

_SERVICES = ("SvcA", "SvcB")
_RIDS = ("r1", "r2", "r3")

_value = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["", "x", "Exited", "Running"]),
)
_state = st.dictionaries(
    st.sampled_from([QName(UVA, "Status"), QName(UVA, "count")]),
    _value,
    max_size=2,
)
_service = st.sampled_from(_SERVICES)
_rid = st.sampled_from(_RIDS)

_op = st.one_of(
    st.tuples(st.just("create"), _service, _rid, _state),
    st.tuples(st.just("load"), _service, _rid),
    st.tuples(st.just("save"), _service, _rid, _state),
    st.tuples(st.just("destroy"), _service, _rid),
    st.tuples(st.just("exists"), _service, _rid),
    st.tuples(st.just("list_ids"), _service),
    st.tuples(st.just("scan_query"), _service),
)


def _apply(store, op):
    """Run one op; returns a comparable (tag, result) pair."""
    kind = op[0]
    try:
        if kind == "create":
            store.create(op[1], op[2], dict(op[3]))
            return ("ok", None)
        if kind == "load":
            return ("ok", store.load(op[1], op[2]))
        if kind == "save":
            store.save(op[1], op[2], dict(op[3]))
            return ("ok", None)
        if kind == "destroy":
            store.destroy(op[1], op[2])
            return ("ok", None)
        if kind == "exists":
            return ("ok", store.exists(op[1], op[2]))
        if kind == "list_ids":
            return ("ok", store.list_ids(op[1]))
        return ("ok", store.scan_query(op[1], "Status[.='Exited']"))
    except (NoSuchResource, DbError) as exc:
        return ("err", type(exc).__name__)


class TestCacheCoherenceProperty:
    @settings(max_examples=120, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=40))
    def test_random_op_sequences_match_oracle(self, ops):
        """Any interleaving of ops across services: the cached store and
        the plain BlobResourceStore oracle return identical results
        (including faults) and end in identical database state."""
        oracle = BlobResourceStore()
        cached = CachedResourceStore()
        for op in ops:
            assert _apply(cached, op) == _apply(oracle, op), op
        cached.assert_coherent()
        for service in _SERVICES:
            assert cached.list_ids(service) == oracle.list_ids(service)
            for rid in oracle.list_ids(service):
                assert cached.load(service, rid) == oracle.load(service, rid)

    @settings(max_examples=60, deadline=None)
    @given(
        first=_state, second=_state,
        rid=_rid, service=_service,
    )
    def test_destroy_then_recreate_same_rid(self, first, second, rid, service):
        """The classic invalidation bug: recreating a destroyed rid must
        serve the *new* state, never the cached old one."""
        oracle = BlobResourceStore()
        cached = CachedResourceStore()
        for store in (oracle, cached):
            store.create(service, rid, dict(first))
            store.load(service, rid)
            store.destroy(service, rid)
            store.create(service, rid, dict(second))
        assert cached.load(service, rid) == oracle.load(service, rid) == second
        assert not cached.is_cached(service, "never-created")
        cached.assert_coherent()

    def test_hits_and_misses_are_counted(self):
        cached = CachedResourceStore()
        cached.create("S", "r", {QName(UVA, "v"): 1})
        assert cached.is_cached("S", "r")
        assert cached.load("S", "r") == {QName(UVA, "v"): 1}
        assert (cached.hits, cached.misses) == (1, 0)
        # A cold cache over a pre-populated inner store misses once,
        # then hits.
        inner = BlobResourceStore()
        inner.create("S", "r", {QName(UVA, "v"): 2})
        cold = CachedResourceStore(inner)
        cold.load("S", "r")
        cold.load("S", "r")
        assert (cold.hits, cold.misses) == (1, 1)
        # D-3 counters keep reporting database operations only.
        assert cold.loads == 1

    def test_loaded_state_is_value_isolated(self):
        """Mutating a loaded dict (or nested Element) must not corrupt
        the cache — blobs, not object references, are cached."""
        cached = CachedResourceStore()
        key = QName(UVA, "payload")
        cached.create("S", "r", {key: Element(QName(UVA, "Doc"), text="a")})
        state = cached.load("S", "r")
        state[key].text = "MUTATED"
        state[QName(UVA, "extra")] = 1
        fresh = cached.load("S", "r")
        assert fresh[key].text == "a"
        assert QName(UVA, "extra") not in fresh
        cached.assert_coherent()


# -- batching semantics -------------------------------------------------------------

class TestBatchedNotifications:
    def test_batch_body_round_trip(self):
        events = [
            (f"t/{i}", Element(QName(UVA, "Ev"), text=str(i))) for i in range(3)
        ]
        body = build_notify_batch_body(events)
        parsed = parse_notify_body(body)
        assert [(t, p.full_text()) for t, p, _ in parsed] == [
            ("t/0", "0"), ("t/1", "1"), ("t/2", "2")
        ]

    def test_enqueued_payloads_are_isolated(self):
        """The publisher may mutate its payload after publish returns;
        the batch must carry the value at publish time."""
        from repro.wsn.batching import NotificationBatcher

        class _Sub:
            resource_id = "sub-1"

        class _Env:
            def process(self, gen):
                return gen  # never driven: we only inspect the queue

        class _Wrapper:
            env = _Env()

        class _Producer:
            wrapper = _Wrapper()

        batcher = NotificationBatcher(_Producer(), 0.05)
        payload = Element(QName(UVA, "Ev"), text="before")
        batcher.enqueue(_Sub(), "t", payload)
        payload.text = "after"
        queued = batcher._pending["sub-1"]
        assert queued[0][1].full_text() == "before"

    def test_per_job_event_order_preserved_end_to_end(self):
        """Across a whole batched Fig. 3 run, every job's lifecycle
        events reach the client in causal order."""
        on = _run_jobset(PerfConfig(), _independent_spec)
        per_job = {}
        for topic, _local in on["client_events"]:
            parts = topic.split("/")
            if len(parts) == 3:  # jobset-xxxx/<job>/<event>
                per_job.setdefault(parts[1], []).append(parts[2])
        assert per_job, "client heard no job events"
        for job, events in per_job.items():
            assert events == ["created", "started", "exited"], job


# -- write elision and the default-off contract -------------------------------------

class TestWriteElision:
    def _fabric(self, perf, observability=False):
        from repro.net import Network
        from repro.osim import Machine
        from repro.sim import Environment
        from repro.wsrf import WsrfClient, deploy

        env = Environment()
        net = Network(env)
        if observability:
            from repro.obs import Observability

            Observability(env).attach(net)
        machine = Machine(net, "server")
        net.add_host("client")
        client = WsrfClient(net, "client")

        from repro.wsrf import (
            GetResourcePropertyPortType,
            Resource,
            ServiceSkeleton,
            WebMethod,
            WSRFPortType,
        )

        @WSRFPortType(GetResourcePropertyPortType)
        class Counter(ServiceSkeleton):
            value = Resource(default=0)

            @WebMethod(requires_resource=False)
            def Create(self):
                return self.epr_for(self.create_resource(value=0))

            @WebMethod
            def ReadValue(self) -> int:
                return self.value

            @WebMethod
            def Increment(self) -> int:
                self.value = self.value + 1
                return self.value

        wrapper = deploy(Counter, machine, "Counter", perf=perf)
        return env, net, machine, client, wrapper

    def _drive(self, env, gen):
        proc = env.process(gen)
        env.run(until=proc)
        return proc.value

    def test_read_only_dispatch_sheds_db_load_delay(self):
        results = {}
        for perf in (None, PerfConfig()):
            env, net, machine, client, wrapper = self._fabric(perf)
            epr = self._drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
            start = env.now

            def reads():
                for _ in range(10):
                    yield from client.call(epr, UVA, "ReadValue")

            self._drive(env, reads())
            results[perf is not None] = (env.now - start) / 10
        db = 0.0008  # machine.params.db_access_s
        assert results[True] < results[False]
        # Read path sheds the full db_load delay (db_save is already
        # skipped by the dirty check; elision removes the stage, not a
        # delay, on reads).
        assert abs((results[False] - results[True]) - db) < 1e-9

    def test_elision_drops_the_db_save_stage(self):
        env, net, machine, client, wrapper = self._fabric(
            PerfConfig(), observability=True
        )
        obs = net.obs
        epr = self._drive(env, client.call(wrapper.service_epr(), UVA, "Create"))

        def calls():
            for _ in range(5):
                yield from client.call(epr, UVA, "ReadValue")
            yield from client.call(epr, UVA, "Increment")

        self._drive(env, calls())
        saves = obs.spans.named("wsrf.dispatch.db_save")
        loads = obs.spans.named("wsrf.dispatch.db_load")
        # Only the Increment (and the Create's pending-op charge) open a
        # db_save stage; the five reads elide it entirely.
        assert wrapper.writes_elided == 5
        assert len(saves) == 2
        assert len(loads) == 6
        hit_attrs = [s.attrs.get("cache") for s in loads]
        assert hit_attrs.count("hit") == 6  # create primed the cache

    def test_mutations_are_never_elided(self):
        env, net, machine, client, wrapper = self._fabric(PerfConfig())
        epr = self._drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        for expected in (1, 2, 3):
            got = self._drive(env, client.call(epr, UVA, "Increment"))
            assert got == expected
        assert self._drive(env, client.call(epr, UVA, "ReadValue")) == 3
        wrapper.store.assert_coherent()
        assert wrapper.store.inner.saves >= 4  # create + three increments

    def test_default_off_keeps_plain_store_and_pipeline(self):
        env, net, machine, client, wrapper = self._fabric(None)
        assert isinstance(wrapper.store, BlobResourceStore)
        assert wrapper.perf is None
        epr = self._drive(env, client.call(wrapper.service_epr(), UVA, "Create"))
        self._drive(env, client.call(epr, UVA, "ReadValue"))
        assert wrapper.writes_elided == 0
        assert wrapper.loads_elided == 0


class TestPerfConfigValidation:
    def test_negative_window_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            PerfConfig(notification_batch_window_s=-0.1)

    def test_zero_window_disables_batching(self):
        tb = _make_testbed(PerfConfigDirect(notification_batch_window_s=0.0))
        assert tb.broker.notification_producer.batcher is None
