"""WSRF003 fixtures: services raising untyped (non-BaseFault) exceptions."""

from repro.wsrf.attributes import ServiceSkeleton, WebMethod
from repro.wsrf.basefaults import BaseFault
from repro.xmlx import NS


class QuotaFault(BaseFault):
    pass


class FaultyService(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    @WebMethod
    def Reserve(self, amount: int) -> int:
        if amount > 10:
            # OK: typed WS-BaseFault, reconstructible client-side.
            raise QuotaFault(description="over quota")
        if amount < 0:
            # WSRF003: plain ValueError becomes an untyped soap:Server.
            raise ValueError("negative amount")
        return amount

    @WebMethod
    def Cancel(self):
        # WSRF003: RuntimeError is not a BaseFault either.
        raise RuntimeError("cannot cancel")
