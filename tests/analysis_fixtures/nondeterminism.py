"""DET001 fixtures: nondeterminism that breaks reproducible seeded runs."""

import random
import time
from datetime import datetime

import numpy as np


def wall_clock_timestamp():
    # DET001: real wall clock instead of env.now.
    return time.time()


def wall_clock_datetime():
    # DET001: same via datetime.
    return datetime.now()


def wall_clock_perf_counter():
    # DET001: the host timer family is only allowlisted in obs/prof.py.
    return time.perf_counter()


def global_rng_choice(machines):
    # DET001: process-global random state.
    return random.choice(machines)


def numpy_global_draw():
    # DET001: numpy's global RNG.
    return np.random.randint(0, 10)


def unseeded_generator():
    # DET001: entropy-seeded generator.
    return np.random.default_rng()


def seeded_generator(seed):
    # OK: explicit seed.
    return np.random.default_rng(seed)


def schedule_from_set(machines):
    # DET001: unordered set iteration feeding a decision.
    for machine in set(machines):
        return machine


def schedule_sorted(machines):
    # OK: order pinned before iterating.
    for machine in sorted(set(machines)):
        return machine


def suppressed_wall_clock():
    # The inline pragma silences this one occurrence.
    return time.time()  # wsrfcheck: ignore[DET001]
