"""Seeded-violation fixtures for the wsrfcheck test suite.

Each module deliberately violates one rule; ``tests/test_analysis.py``
runs the analyzer over this directory and asserts every rule fires at
the expected sites (golden report: ``tests/analysis_golden.json``).
These files are analyzed as text (pure AST) and never imported at test
time, but they are kept syntactically valid Python.
"""
