"""WSRF005 fixtures: EndpointReferences escaping into process-global state.

Module and class globals outlive the resources they point at across a
host restart (docs/durability.md); handles belong in WS-Resource state
or should be re-derived per use.
"""

from repro.wsa import EndpointReference

# WSRF005: a handle parked in a module-level global at import time.
SCHEDULER_EPR = EndpointReference("soap.tcp://head01:9000/Scheduler")

#: module-level containers the functions below leak into
KNOWN_PEERS = []
PEER_REGISTRY = {}

_last_seen = None


class PeerCache:
    latest = None


def _service_handle(wrapper):
    # an EPR producer: callers of this helper produce EPRs too
    return wrapper.service_epr()


# WSRF005: producer-returned handle stored at module level (the escape
# is one helper away from the epr primitive).
BROKER_HANDLE = _service_handle(None)


def remember_peer(wrapper, rid):
    # WSRF005: appended into a module-level container.
    KNOWN_PEERS.append(wrapper.epr_for(rid))


def cache_in_registry(wrapper, rid):
    # WSRF005: keyed into a module-level dict.
    PEER_REGISTRY[rid] = wrapper.epr_for(rid)


def stash_in_global(wrapper, rid):
    global _last_seen
    # WSRF005: rebinding a declared module global.
    _last_seen = wrapper.epr_for(rid)


def stash_in_class_attr(wrapper, rid):
    # WSRF005: class attributes are process globals with a dot.
    PeerCache.latest = wrapper.epr_for(rid)


def local_handle_ok(wrapper, rid):
    # OK: a local that dies with the call frame.
    epr = wrapper.epr_for(rid)
    return epr


def accepted_registry_entry(wrapper, rid):
    # The inline pragma accepts this one escape (audited: rebuilt on
    # restart by the recovery path).
    PEER_REGISTRY[rid] = wrapper.epr_for(rid)  # wsrfcheck: ignore[WSRF005]
