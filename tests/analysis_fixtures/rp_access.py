"""WSRF002 fixtures: resource property access outside the declared contract."""

from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
)
from repro.xmlx import NS, QName

UVA = NS.UVACG

_STATUS_RP = QName(UVA, "Status")
_BOGUS_RP = QName(UVA, "Statas")


class PropertyService(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    status = Resource(default="New")

    @ResourceProperty
    @property
    def Status(self):
        return self.status

    @WebMethod
    def Touch(self) -> str:
        self.status = "Touched"
        return self.status

    @WebMethod
    def Leak(self) -> int:
        # WSRF002: "progress" is not a Resource field; this write is
        # silently dropped when the wrapper persists the resource.
        self.progress = 42
        return self.progress


def good_read(client, epr):
    yield from client.get_resource_property(epr, _STATUS_RP)


def reads_undeclared_property(client, epr):
    # WSRF002: "Statas" (typo) is not declared by any UVACG service here.
    yield from client.get_resource_property(epr, _BOGUS_RP)


def reads_undeclared_inline(client, epr):
    # WSRF002: same, with an inline QName in a multi-property read.
    yield from client.get_multiple_resource_properties(
        epr, [_STATUS_RP, QName(UVA, "Progress")]
    )
