"""WSRF001 fixtures: call sites that drifted from the @WebMethod contract."""

from repro.wsrf.attributes import Resource, ServiceSkeleton, WebMethod
from repro.xmlx import NS

UVA = NS.UVACG


class DriftService(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    counter = Resource(default=0)

    @WebMethod
    def Increment(self, amount: int) -> int:
        self.counter = self.counter + amount
        return self.counter

    @WebMethod(one_way=True)
    def Report(self, text: str):
        pass


def good_call(client, epr):
    yield from client.call(epr, UVA, "Increment", {"amount": 2})


def calls_unknown_method(client, epr):
    # WSRF001: no service declares "Incremnt" (typo'd method name).
    yield from client.call(epr, UVA, "Incremnt", {"amount": 2})


def sends_unknown_argument(client, epr):
    # WSRF001: "amt" is not a parameter of Increment.
    yield from client.call(epr, UVA, "Increment", {"amt": 2})


def omits_required_argument(client, epr):
    # WSRF001: Increment requires "amount".
    yield from client.call(epr, UVA, "Increment", {})


def one_way_mismatch(client, epr):
    # WSRF001: Increment is request/response, but invoked one-way.
    yield from client.call(epr, UVA, "Increment", {"amount": 1}, one_way=True)


def good_one_way(client, epr):
    yield from client.call(epr, UVA, "Report", {"text": "ok"}, one_way=True)
