"""WAL001/WAL002 fixtures: notifications racing the db_save stage.

WAL001 sees ``fire_and_forget`` lexically inside a ServiceSkeleton
subclass; WAL002 follows it through helper layers and into port-type
methods, which run in the same dispatch pipeline without subclassing
ServiceSkeleton.
"""

from repro.wsn.base_notification import build_notify_body, fire_and_forget
from repro.wsrf.attributes import ServiceSkeleton, WebMethod
from repro.wsrf.porttypes import SpecPortType
from repro.xmlx import NS, Element, QName


class EagerAnnouncer(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    done = None  # stands in for a Resource field in this fixture

    @WebMethod
    def Finish(self) -> str:
        self.done = True
        payload = Element(QName(NS.UVACG, "Done"))
        body = build_notify_body("jobs/done", payload, self.wsrf.my_epr())
        # WAL001: the Notify leaves before db_save persists done=True;
        # a crash in between acknowledges state that no longer exists.
        fire_and_forget(self.env, self.client, self.wsrf.my_epr(), body)
        return "ok"

    @WebMethod
    def FinishSafely(self) -> str:
        self.done = True
        payload = Element(QName(NS.UVACG, "Done"))
        body = build_notify_body("jobs/done", payload, self.wsrf.my_epr())
        # OK: queued on the invocation outbox, sent only after db_save.
        self.wsrf.send_after_persist(self.wsrf.my_epr(), body)
        return "ok"


def relay(env, client, epr, body):
    # OK for WAL001: module-level helper, not service code — the
    # infrastructure (producers, batchers) legitimately sends
    # fire-and-forget.  It only becomes a WAL002 finding when a
    # dispatch-pipeline method reaches it (LayeredAnnouncer below).
    fire_and_forget(env, client, epr, body)


class LayeredAnnouncer(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    @WebMethod
    def FinishLayered(self, epr, body) -> str:
        # WAL002: the raw send hides one helper down — WAL001's lexical
        # scan never sees it, the call graph does.
        relay(self.env, self.client, epr, body)
        return "ok"


def _route_safely(ctx, epr, body):
    # OK: the helper rides the invocation outbox.
    ctx.send_after_persist(epr, body)


class LayeredSafeAnnouncer(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    @WebMethod
    def FinishSafelyLayered(self, epr, body) -> str:
        # OK: helper chain ends in send_after_persist, not a raw send.
        _route_safely(self.wsrf, epr, body)
        return "ok"


class DemandSignalPortType(SpecPortType):
    """A port type sending raw — the dispatch pipeline without
    ServiceSkeleton, so only WAL002's dispatch-class closure sees it."""

    def signal(self, request: Element) -> Element:
        body = Element(QName(NS.UVACG, "Signal"))
        # WAL002 (depth 0): port-type method, invisible to WAL001.
        fire_and_forget(self.wrapper.env, self.wrapper.client, request, body)
        return body
