"""WAL001 fixtures: notifications racing the db_save stage."""

from repro.wsn.base_notification import build_notify_body, fire_and_forget
from repro.wsrf.attributes import ServiceSkeleton, WebMethod
from repro.xmlx import NS, Element, QName


class EagerAnnouncer(ServiceSkeleton):
    SERVICE_NS = NS.UVACG

    done = None  # stands in for a Resource field in this fixture

    @WebMethod
    def Finish(self) -> str:
        self.done = True
        payload = Element(QName(NS.UVACG, "Done"))
        body = build_notify_body("jobs/done", payload, self.wsrf.my_epr())
        # WAL001: the Notify leaves before db_save persists done=True;
        # a crash in between acknowledges state that no longer exists.
        fire_and_forget(self.env, self.client, self.wsrf.my_epr(), body)
        return "ok"

    @WebMethod
    def FinishSafely(self) -> str:
        self.done = True
        payload = Element(QName(NS.UVACG, "Done"))
        body = build_notify_body("jobs/done", payload, self.wsrf.my_epr())
        # OK: queued on the invocation outbox, sent only after db_save.
        self.wsrf.send_after_persist(self.wsrf.my_epr(), body)
        return "ok"


def relay(env, client, epr, body):
    # OK: module-level helper, not service code — the infrastructure
    # (producers, batchers) legitimately sends fire-and-forget.
    fire_and_forget(env, client, epr, body)
