"""DET002 fixtures: nondeterminism reaching sim-visible code via helpers.

DET001 flags the source site in place; DET002 follows the call graph
and flags the service method or detached process whose behavior the
source actually perturbs, with a witness chain.
"""

import random
import time

import numpy as np

from repro.wsrf.attributes import ServiceSkeleton, WebMethod


def _wall_clock_tag():
    # DET001 fires here (depth 0)...
    return f"run-{time.time()}"


class TimestampingService(ServiceSkeleton):
    @WebMethod
    def Stamp(self) -> str:
        # ...and DET002 fires *here*: the service method inherits the
        # nondeterminism through the helper call.
        return _wall_clock_tag()


def _jitter_delay():
    # DET001: process-global RNG.
    return random.random() * 0.5


def start_jitter_process(env):
    def jitter(env):
        while True:
            # DET002: the detached process's timing depends on the
            # helper's global RNG draw.
            yield env.timeout(_jitter_delay())

    return env.process(jitter(env))


def _seeded_delay(seed):
    # OK: explicit seed, reproducible.
    rng = np.random.default_rng(seed)
    return rng.random()


class SeededService(ServiceSkeleton):
    @WebMethod
    def Sample(self, seed: int) -> float:
        # OK: the helper chain is deterministic.
        return _seeded_delay(seed)


def _accepted_wall_clock():
    # A multi-rule pragma: accepting the source here also keeps it from
    # tainting callers (no DET002 at AcceptingService.Accepted).
    return time.time()  # wsrfcheck: ignore[DET001, DET002]


class AcceptingService(ServiceSkeleton):
    @WebMethod
    def Accepted(self) -> str:
        # OK: the only source on the chain was explicitly accepted.
        return f"at-{_accepted_wall_clock()}"
