"""SIM002 fixtures: sim processes mutating shared WS-Resource state."""


def start_unsafe_sweeper(env, wrapper):
    def sweeper(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                state = wrapper.store.load(wrapper.service_name, rid)
                state["swept"] = True
                # SIM002: load-modify-save without the resource lock.
                wrapper.store.save(wrapper.service_name, rid, state)

    return env.process(sweeper(env))


def start_unsafe_reaper(env, wrapper, rid):
    def reaper(env):
        yield env.timeout(5.0)
        # SIM002: destroy without holding the resource lock.
        wrapper.destroy_resource(rid)

    return env.process(reaper(env))


def start_safe_sweeper(env, wrapper):
    def sweeper(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                lock = wrapper.resource_lock(rid)
                yield lock.acquire()
                try:
                    state = wrapper.store.load(wrapper.service_name, rid)
                    state["swept"] = True
                    # OK: the lock above covers the load-modify-save.
                    wrapper.store.save(wrapper.service_name, rid, state)
                finally:
                    lock.release()

    return env.process(sweeper(env))


def plain_helper_not_a_process(wrapper, rid, state):
    # OK: not handed to env.process(); invocation-path code runs under
    # the dispatcher's own resource lock.
    wrapper.store.save(wrapper.service_name, rid, state)
