"""LOCK001 fixtures: detached processes mutating shared WS-Resource state.

The interprocedural successor of the old per-file SIM002: mutations are
flagged when they run on a call path from an ``env.process(...)`` root
with no resource Lock acquired anywhere along the chain — including
mutations buried in helpers the per-file rule could never see.
"""


def start_unsafe_sweeper(env, wrapper):
    def sweeper(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                state = wrapper.store.load(wrapper.service_name, rid)
                state["swept"] = True
                # LOCK001: load-modify-save without the resource lock.
                wrapper.store.save(wrapper.service_name, rid, state)

    return env.process(sweeper(env))


def start_unsafe_reaper(env, wrapper, rid):
    def reaper(env):
        yield env.timeout(5.0)
        # LOCK001: destroy without holding the resource lock.
        wrapper.destroy_resource(rid)

    return env.process(reaper(env))


def start_layered_sweeper(env, wrapper):
    def layered(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                # The mutation hides one call down; the witness chain is
                # layered -> _sweep_one.
                _sweep_one(wrapper, rid)

    return env.process(layered(env))


def _sweep_one(wrapper, rid):
    state = wrapper.store.load(wrapper.service_name, rid)
    state["swept"] = True
    # LOCK001: reached from the layered root with no lock on the chain.
    wrapper.store.save(wrapper.service_name, rid, state)


def start_safe_sweeper(env, wrapper):
    def sweeper(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                lock = wrapper.resource_lock(rid)
                yield lock.acquire()
                try:
                    state = wrapper.store.load(wrapper.service_name, rid)
                    state["swept"] = True
                    # OK: the lock above covers the load-modify-save.
                    wrapper.store.save(wrapper.service_name, rid, state)
                finally:
                    lock.release()

    return env.process(sweeper(env))


def start_safe_layered_sweeper(env, wrapper):
    def guarded(env):
        while True:
            yield env.timeout(1.0)
            for rid in wrapper.resource_ids():
                lock = wrapper.resource_lock(rid)
                yield lock.acquire()
                try:
                    # OK: the call site sits below the acquire, so the
                    # helper enters the graph locked on this path.
                    _locked_sweep(wrapper, rid)
                finally:
                    lock.release()

    return env.process(guarded(env))


def _locked_sweep(wrapper, rid):
    state = wrapper.store.load(wrapper.service_name, rid)
    state["swept"] = True
    wrapper.store.save(wrapper.service_name, rid, state)


def start_recovery(env, wrapper):
    def restore(env):
        yield env.timeout(0.0)
        # OK: recovery allowlist — restore runs single-threaded before
        # concurrent dispatch starts (the old boot's locks are gone).
        for rid in wrapper.store.list_ids(wrapper.service_name):
            wrapper.store.save(wrapper.service_name, rid, {"recovered": True})

    return env.process(restore(env))


def plain_helper_not_a_process(wrapper, rid, state):
    # OK: not reachable from any env.process(...) root; invocation-path
    # code runs under the dispatcher's own resource lock.
    wrapper.store.save(wrapper.service_name, rid, state)
