"""DET001 allowlist fixture: this path suffix (obs/prof.py) may read
the host timer family, but nothing else is exempted here."""

import random
import time


def allowed_timer_read():
    # OK: perf_counter in an allowlisted file (the profiler's job).
    return time.perf_counter()


def allowed_timer_read_ns():
    # OK: the whole timer family is exempt here.
    return time.monotonic_ns()


def still_flagged_rng(machines):
    # DET001: the allowlist covers timers only, not global RNG state.
    return random.choice(machines)
