"""WSRF004 fixtures: resource handles used after being destroyed.

Destroys count interprocedurally — a helper whose body destroys its
parameter destroys it at every call site — and only *definite*
destruction flags (branch merge is intersection; reassignment clears).
The namespace argument is a parameter on purpose: these sites exercise
lifecycle tracking, not WSRF001's proxy-signature matching.
"""


def destroy_then_call(client, epr, ns):
    client.call(epr, ns, "Destroy")
    # WSRF004: the resource behind epr is gone; this raises
    # ResourceUnknownFault at runtime.
    return client.call(epr, ns, "GetStatus")


def destroy_then_load(wrapper, rid):
    wrapper.destroy_resource(rid)
    # WSRF004: loading a destroyed resource's row.
    return wrapper.store.load(wrapper.service_name, rid)


def double_destroy(wrapper, rid):
    wrapper.destroy_resource(rid)
    # WSRF004: a second destroy of the same handle.
    wrapper.destroy_resource(rid)


def _retire(wrapper, rid):
    # a destroyer helper: destroys its parameter
    wrapper.destroy_resource(rid)


def destroy_via_helper_then_use(wrapper, rid):
    _retire(wrapper, rid)
    # WSRF004: _retire() destroyed rid; the epr_for re-derivation hands
    # out a dangling handle.
    return wrapper.epr_for(rid)


def conditional_destroy_ok(wrapper, rid, done):
    if done:
        wrapper.destroy_resource(rid)
    # OK: only one branch destroys, so the handle may still be live.
    return wrapper.store.exists(wrapper.service_name, rid)


def reassign_after_destroy_ok(wrapper, rid):
    wrapper.destroy_resource(rid)
    rid = wrapper.create_resource()
    # OK: rid was rebound to a fresh resource after the destroy.
    wrapper.store.save(wrapper.service_name, rid, {})
    return rid


def destroy_last_ok(client, epr, ns):
    status = client.call(epr, ns, "GetStatus")
    # OK: the destroy is the final touch on the handle.
    client.call(epr, ns, "Destroy")
    return status
