"""SIM001 fixtures: real blocking calls inside the simulated world."""

import socket
import time


def real_sleep(env, delay):
    # SIM001: stalls the real thread, not the simulation clock.
    time.sleep(delay)
    yield env.timeout(0)


def real_socket(host):
    # SIM001: real network I/O from simulation code.
    return socket.create_connection((host, 80))


def real_file_read(path):
    # SIM001: real filesystem I/O; the simulated fs is SimFileSystem.
    with open(path) as handle:
        return handle.read()


def simulated_equivalents(env, fs, path):
    # OK: simulated time and filesystem.
    yield env.timeout(1.0)
    return fs.read_file(path)
