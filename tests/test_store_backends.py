"""Pluggable WS-Resource state backends (paper §3's future work).

"the next version (2.0) will expose this interface to programmers,
thereby allowing a larger set of abstractions (e.g., modeling legacy
systems as WS-Resources)."  The wrapper accepts any object with the
resource-store protocol: the default blob-relational store, the XML
store of §5's Yukon experiment, and (here) a custom provider that
models a legacy system's records as WS-Resources.
"""

import pytest

from repro.db import (
    BlobResourceStore,
    CachedResourceStore,
    NoSuchResource,
    SqlResourceStore,
    XmlResourceStore,
)
from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
    Resource,
    ResourceProperty,
    ResourceUnknownFault,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, QName

UVA = NS.UVACG


@WSRFPortType(GetResourcePropertyPortType, QueryResourcePropertiesPortType)
class CounterService(ServiceSkeleton):
    count = Resource(default=0)

    @ResourceProperty
    @property
    def Count(self) -> int:
        return self.count

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Bump(self) -> int:
        self.count = self.count + 1
        return self.count


def _fabric(store):
    env = Environment()
    net = Network(env)
    machine = Machine(net, "server")
    wrapper = deploy(CounterService, machine, "Counter", store=store)
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


@pytest.mark.parametrize("store_cls", [BlobResourceStore, XmlResourceStore])
class TestInterchangeableBackends:
    def test_full_lifecycle_identical(self, store_cls):
        env, wrapper, client = _fabric(store_cls())
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        assert run(env, client.call(epr, UVA, "Bump")) == 1
        assert run(env, client.call(epr, UVA, "Bump")) == 2
        assert run(env, client.get_resource_property(epr, QName(UVA, "Count"))) == 2

    def test_unknown_resource_faults(self, store_cls):
        env, wrapper, client = _fabric(store_cls())
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(wrapper.epr_for("ghost"), UVA, "Bump"))

    def test_query_works_on_both(self, store_cls):
        env, wrapper, client = _fabric(store_cls())
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        run(env, client.call(epr, UVA, "Bump"))
        hits = run(env, client.query_resource_properties(epr, "//Count/text()"))
        assert hits == ["1"]


class LegacyInventorySystem:
    """The 'legacy system' — a plain dict of part records, oblivious to WSRF."""

    def __init__(self):
        self.parts = {
            "part-100": {"stock": 12},
            "part-200": {"stock": 3},
        }


class LegacyStoreAdapter:
    """Models the legacy system's records as WS-Resource state.

    Implements the store protocol (create/exists/load/save/destroy/
    list_ids) over the legacy structure; the WSRF wrapper neither knows
    nor cares that there is no database behind it.
    """

    def __init__(self, legacy: LegacyInventorySystem):
        self.legacy = legacy
        self.loads = self.saves = 0

    def _key(self):
        return QName(UVA, "count")  # CounterService's single field

    def create(self, service, rid, state):
        if rid in self.legacy.parts:
            raise ValueError(f"duplicate {rid}")
        self.legacy.parts[rid] = {"stock": int(state.get(self._key()) or 0)}
        self.saves += 1

    def exists(self, service, rid):
        return rid in self.legacy.parts

    def load(self, service, rid):
        try:
            record = self.legacy.parts[rid]
        except KeyError:
            raise NoSuchResource(rid) from None
        self.loads += 1
        return {self._key(): record["stock"]}

    def save(self, service, rid, state):
        if rid not in self.legacy.parts:
            raise NoSuchResource(rid)
        self.legacy.parts[rid]["stock"] = int(state.get(self._key()) or 0)
        self.saves += 1

    def destroy(self, service, rid):
        if rid not in self.legacy.parts:
            raise NoSuchResource(rid)
        del self.legacy.parts[rid]

    def list_ids(self, service):
        return sorted(self.legacy.parts)


#: every backend must speak the uniform checkpoint dialect of
#: docs/durability.md: snapshot() -> {"Service|rid": encoded bytes}
SNAPSHOT_BACKENDS = [
    BlobResourceStore,
    XmlResourceStore,
    SqlResourceStore,
    CachedResourceStore,
]

COUNT = QName(UVA, "count")


@pytest.mark.parametrize("store_cls", SNAPSHOT_BACKENDS)
class TestSnapshotRestore:
    def test_round_trip_is_byte_identical(self, store_cls):
        env, wrapper, client = _fabric(store_cls())
        epr1 = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        epr2 = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        run(env, client.call(epr1, UVA, "Bump"))
        snap = wrapper.store.snapshot()
        assert len(snap) == 2
        assert all(
            isinstance(k, str) and "|" in k and isinstance(v, bytes)
            for k, v in snap.items()
        )
        # Diverge past the checkpoint, then roll back.
        run(env, client.call(epr1, UVA, "Bump"))
        run(env, client.call(epr2, UVA, "Bump"))
        wrapper.store.restore(snap)
        assert wrapper.store.snapshot() == snap
        # The restored state is live: epr1 was at 1 in the checkpoint.
        assert run(env, client.call(epr1, UVA, "Bump")) == 2

    def test_restore_evicts_post_checkpoint_resources(self, store_cls):
        store = store_cls()
        store.create("Counter", "keep", {COUNT: 1})
        snap = store.snapshot()
        store.create("Counter", "doomed", {COUNT: 2})
        store.destroy("Counter", "keep")
        store.restore(snap)
        assert store.exists("Counter", "keep")
        assert not store.exists("Counter", "doomed")
        assert store.load("Counter", "keep") == {COUNT: 1}

    def test_empty_store_round_trip(self, store_cls):
        store = store_cls()
        assert store.snapshot() == {}
        store.create("Counter", "r1", {COUNT: 1})
        store.restore({})
        assert not store.exists("Counter", "r1")
        assert list(store.list_ids("Counter")) == []


class TestCheckpointPortability:
    def test_checkpoint_restores_into_any_backend(self):
        src = BlobResourceStore()
        src.create("Counter", "a", {COUNT: 7})
        src.create("Counter", "b", {COUNT: "text"})
        snap = src.snapshot()
        for dest_cls in (XmlResourceStore, SqlResourceStore, CachedResourceStore):
            dest = dest_cls()
            dest.restore(snap)
            assert dest.snapshot() == snap, dest_cls.__name__
            assert dest.load("Counter", "a") == src.load("Counter", "a")


class TestCachedStoreRestoreInvalidation:
    def test_cache_cannot_resurrect_pre_restart_state(self):
        """Regression: restore() must invalidate the blob cache.

        If restore wrote through to the inner store but left ``_blobs``
        alone, the next load would serve the rolled-back post-checkpoint
        blob — resurrecting state the crash erased.
        """
        store = CachedResourceStore()
        store.create("Counter", "r1", {COUNT: 1})
        before = store.load("Counter", "r1")  # primes the cache
        snap = store.snapshot()
        store.save("Counter", "r1", {COUNT: 99})
        store.load("Counter", "r1")  # cache now holds the doomed blob
        store.restore(snap)
        store.assert_coherent()
        assert store.load("Counter", "r1") == before


class TestLegacySystemAsResources:
    def test_existing_records_are_ws_resources(self):
        legacy = LegacyInventorySystem()
        env, wrapper, client = _fabric(LegacyStoreAdapter(legacy))
        # The pre-existing legacy records answer WSRF calls immediately.
        epr = wrapper.epr_for("part-100")
        assert run(env, client.get_resource_property(epr, QName(UVA, "Count"))) == 12

    def test_wsrf_writes_hit_the_legacy_system(self):
        legacy = LegacyInventorySystem()
        env, wrapper, client = _fabric(LegacyStoreAdapter(legacy))
        run(env, client.call(wrapper.epr_for("part-200"), UVA, "Bump"))
        assert legacy.parts["part-200"]["stock"] == 4  # mutated in place

    def test_destroy_removes_legacy_record(self):
        legacy = LegacyInventorySystem()
        env, wrapper, client = _fabric(LegacyStoreAdapter(legacy))
        wrapper.destroy_resource("part-100")
        assert "part-100" not in legacy.parts
