"""Shared test configuration.

Pins a deterministic Hypothesis profile for the whole suite: property
tests (e.g. ``test_db.py::TestStateCodec::test_roundtrip_property``)
were flaky under the default randomized search — a fresh seed per run
occasionally tripped the default per-example deadline on slow CI
machines.  ``derandomize=True`` makes every run explore the same fixed
example sequence, and ``deadline=None`` removes the wall-clock
sensitivity (these are pure-Python codecs; a slow run is not a bug).
Override with ``HYPOTHESIS_PROFILE=dev`` for randomized local hunting.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=50,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None, max_examples=100)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
