"""Tests for WS-Addressing and the SOAP message layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soap import SoapEnvelope, SoapFault, from_typed_element, to_typed_element
from repro.wsa import AddressingHeaders, EndpointReference, make_message_id
from repro.xmlx import NS, Element, QName


class TestEndpointReference:
    def test_address_required(self):
        with pytest.raises(ValueError):
            EndpointReference("")

    def test_reference_properties_lookup(self):
        epr = EndpointReference(
            "http://h/Svc", {QName(NS.UVACG, "ResourceID"): "42"}
        )
        assert epr.get(QName(NS.UVACG, "ResourceID")) == "42"
        assert epr.get(QName(NS.UVACG, "Missing")) is None
        assert epr.get(QName(NS.UVACG, "Missing"), "d") == "d"

    def test_equality_and_hash(self):
        a = EndpointReference("http://h/S", {QName("k"): "v"})
        b = EndpointReference("http://h/S", {QName("k"): "v"})
        c = EndpointReference("http://h/S", {QName("k"): "w"})
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_immutable(self):
        epr = EndpointReference("http://h/S")
        with pytest.raises(AttributeError):
            epr.address = "http://other"

    def test_with_property_returns_new(self):
        base = EndpointReference("http://h/S")
        derived = base.with_property(QName(NS.UVACG, "ResourceID"), "7")
        assert base.get(QName(NS.UVACG, "ResourceID")) is None
        assert derived.get(QName(NS.UVACG, "ResourceID")) == "7"
        assert derived.address == base.address

    def test_xml_roundtrip(self):
        epr = EndpointReference(
            "soap.tcp://client:9000/files",
            {QName(NS.UVACG, "Dir"): "/scratch/j1", QName(NS.UVACG, "Owner"): "gw"},
        )
        again = EndpointReference.from_xml(epr.to_xml())
        assert again == epr

    def test_from_xml_requires_address(self):
        with pytest.raises(ValueError):
            EndpointReference.from_xml(Element(QName(NS.WSA, "EndpointReference")))

    def test_property_order_canonicalized(self):
        a = EndpointReference("http://h", {QName("a"): "1", QName("b"): "2"})
        b = EndpointReference("http://h", {QName("b"): "2", QName("a"): "1"})
        assert a == b and hash(a) == hash(b)


class TestAddressingHeaders:
    def _headers(self, **kw):
        epr = EndpointReference(
            "http://node1:80/ExecService", {QName(NS.UVACG, "JobID"): "j-9"}
        )
        return AddressingHeaders(epr, action="urn:Run", **kw)

    def test_message_ids_unique(self):
        assert make_message_id() != make_message_id()

    def test_roundtrip_through_header_elements(self):
        reply = EndpointReference("http://client:7000/notify")
        hdrs = self._headers(reply_to=reply, relates_to="uuid:msg-1")
        again = AddressingHeaders.from_header_elements(hdrs.to_header_elements())
        assert again.to_epr == hdrs.to_epr
        assert again.action == "urn:Run"
        assert again.message_id == hdrs.message_id
        assert again.relates_to == "uuid:msg-1"
        assert again.reply_to == reply

    def test_reference_properties_become_headers(self):
        blocks = self._headers().to_header_elements()
        tags = [b.tag for b in blocks]
        assert QName(NS.UVACG, "JobID") in tags

    def test_missing_to_rejected(self):
        with pytest.raises(ValueError, match="wsa:To"):
            AddressingHeaders.from_header_elements(
                [Element(QName(NS.WSA, "Action"), text="urn:x")]
            )

    def test_missing_action_rejected(self):
        with pytest.raises(ValueError, match="wsa:Action"):
            AddressingHeaders.from_header_elements(
                [Element(QName(NS.WSA, "To"), text="http://h")]
            )


def _envelope(payload=None, **kw):
    epr = EndpointReference(
        "http://node1:80/FSS", {QName(NS.UVACG, "ResourceID"): "dir-1"}
    )
    body = payload if payload is not None else Element(QName(NS.UVACG, "List"))
    return SoapEnvelope(AddressingHeaders(epr, action="urn:List", **kw), body)


class TestSoapEnvelope:
    def test_serialize_deserialize_roundtrip(self):
        env = _envelope()
        again = SoapEnvelope.deserialize(env.serialize())
        assert again.action == "urn:List"
        assert again.addressing.to_epr == env.addressing.to_epr
        assert again.body.tag == QName(NS.UVACG, "List")

    def test_extra_headers_roundtrip(self):
        env = _envelope()
        sec = Element(QName(NS.WSSE, "Security"))
        sec.subelement(QName(NS.WSSE, "UsernameToken"), text="gw")
        env.extra_headers.append(sec)
        again = SoapEnvelope.deserialize(env.serialize())
        found = again.find_header(QName(NS.WSSE, "Security"))
        assert found is not None
        assert found.children[0].full_text() == "gw"

    def test_body_must_have_one_child(self):
        text = _envelope().serialize()
        # Manually build an empty-body envelope.
        bad = (
            f'<soap:Envelope xmlns:soap="{NS.SOAP}" xmlns:wsa="{NS.WSA}">'
            "<soap:Header><wsa:To>http://h</wsa:To>"
            "<wsa:Action>urn:x</wsa:Action></soap:Header>"
            "<soap:Body /></soap:Envelope>"
        )
        with pytest.raises(ValueError, match="body"):
            SoapEnvelope.deserialize(bad)
        assert SoapEnvelope.deserialize(text)  # control

    def test_wire_size_counts_bytes(self):
        small = _envelope().wire_size()
        big_payload = Element(QName(NS.UVACG, "Write"), text="x" * 10_000)
        big = _envelope(payload=big_payload).wire_size()
        assert big > small + 9_000

    def test_not_an_envelope_rejected(self):
        with pytest.raises(ValueError, match="not a SOAP envelope"):
            SoapEnvelope.from_element(Element("r"))


class TestSoapFault:
    def test_roundtrip(self):
        detail = Element(QName(NS.WSRF_BF, "BaseFault"))
        detail.subelement(QName(NS.WSRF_BF, "Description"), text="no such resource")
        fault = SoapFault("soap:Client", "bad resource", [detail])
        again = SoapFault.from_element(fault.to_element())
        assert again.code == "soap:Client"
        assert again.reason == "bad resource"
        assert again.detail[0].tag == QName(NS.WSRF_BF, "BaseFault")

    def test_is_fault(self):
        assert SoapFault.is_fault(SoapFault().to_element())
        assert not SoapFault.is_fault(Element("x"))

    def test_from_element_type_checked(self):
        with pytest.raises(ValueError):
            SoapFault.from_element(Element("x"))

    def test_fault_is_exception(self):
        with pytest.raises(SoapFault, match="oops"):
            raise SoapFault("soap:Server", "oops")


class TestTypedValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**40,
            3.5,
            -0.125,
            "",
            "hello <world> & 'friends'",
            b"\x00\x01\xffbinary",
            ["a", 1, None, [True]],
            {"k1": "v", "k2": 2, "nested": {"x": [1.5]}},
        ],
    )
    def test_roundtrip(self, value):
        el = to_typed_element(QName(NS.UVACG, "arg"), value)
        # Force a wire trip through text to catch serialization bugs.
        from repro.xmlx import parse, to_string

        assert from_typed_element(parse(to_string(el))) == value

    def test_epr_roundtrip(self):
        epr = EndpointReference("http://h/S", {QName("id"): "1"})
        el = to_typed_element(QName(NS.UVACG, "arg"), epr)
        assert from_typed_element(el) == epr

    def test_element_passthrough(self):
        inner = Element(QName(NS.UVACG, "doc"), text="payload")
        el = to_typed_element(QName(NS.UVACG, "arg"), inner)
        out = from_typed_element(el)
        assert out.equals(inner)

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            to_typed_element(QName("x"), object())

    def test_non_string_map_key_rejected(self):
        with pytest.raises(TypeError):
            to_typed_element(QName("x"), {1: "a"})

    def test_unknown_xsi_type_faults(self):
        el = Element("x", attrib={QName(NS.XSI, "type"): "uva:nope"})
        with pytest.raises(SoapFault):
            from_typed_element(el)

    def test_bad_boolean_faults(self):
        el = Element("x", attrib={QName(NS.XSI, "type"): "xsd:boolean"}, text="maybe")
        with pytest.raises(SoapFault):
            from_typed_element(el)

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**62), max_value=2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=30),
                st.binary(max_size=30),
            ),
            lambda leaf: st.one_of(
                st.lists(leaf, max_size=4),
                st.dictionaries(st.text(min_size=1, max_size=8), leaf, max_size=4),
            ),
            max_leaves=12,
        )
    )
    def test_roundtrip_property(self, value):
        from repro.xmlx import parse, to_string

        el = to_typed_element(QName(NS.UVACG, "v"), value)
        assert from_typed_element(parse(to_string(el))) == value
