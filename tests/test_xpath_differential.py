"""Differential testing: XPath-lite vs a brute-force reference.

QueryResourceProperties rides on :func:`repro.xmlx.xpath_select`; these
tests pit it against an independent, obviously-correct reference
implementation on randomized documents, plus fuzz the typed-value
decoder with arbitrary parsed XML (it must fail *predictably*).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.soap import SoapFault, from_typed_element
from repro.xmlx import Element, QName, parse, to_string, xpath_select

_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def _docs(draw, depth=0):
    el = Element(QName("http://t", draw(_names)))
    if depth < 3:
        for child in draw(st.lists(_docs(depth=depth + 1), max_size=3)):
            el.append(child)
    if not el.children:
        el.text = draw(st.sampled_from(["", "x", "y"]))
    return el


def _ref_descendants(root, local):
    """Reference for ``//local``: document-order descendant-or-self scan."""
    return [el for el in root.iter() if el.tag.local == local]


def _ref_children(root, local):
    """Reference for relative ``local``: direct children."""
    return [child for child in root.children if child.tag.local == local]


def _ref_path(root, first, second):
    """Reference for ``first/second``."""
    out = []
    for a in _ref_children(root, first):
        out.extend(_ref_children(a, second))
    return out


class TestDifferentialXPath:
    @given(_docs(), _names)
    def test_descendant_axis_matches_reference(self, doc, name):
        ours = xpath_select(doc, f"//{name}")
        theirs = _ref_descendants(doc, name)
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert mine.equals(ref)

    @given(_docs(), _names)
    def test_child_axis_matches_reference(self, doc, name):
        ours = xpath_select(doc, name)
        theirs = _ref_children(doc, name)
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert mine.equals(ref)

    @given(_docs(), _names, _names)
    def test_two_step_path_matches_reference(self, doc, first, second):
        ours = xpath_select(doc, f"{first}/{second}")
        theirs = _ref_path(doc, first, second)
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert mine.equals(ref)

    @given(_docs(), _names)
    def test_positional_predicate_consistent(self, doc, name):
        all_hits = xpath_select(doc, name)
        for index in range(1, len(all_hits) + 1):
            picked = xpath_select(doc, f"{name}[{index}]")
            assert len(picked) == (1 if index <= len(all_hits) else 0)
            if picked:
                assert picked[0].equals(all_hits[index - 1])

    @given(_docs())
    def test_select_survives_serialization(self, doc):
        """Query results are identical on a wire-tripped document."""
        again = parse(to_string(doc))
        for name in ("a", "b", "c", "d"):
            ours = xpath_select(doc, f"//{name}")
            theirs = xpath_select(again, f"//{name}")
            assert len(ours) == len(theirs)


class TestTypedDecoderFuzz:
    @given(_docs())
    def test_decoder_fails_predictably(self, doc):
        """from_typed_element on arbitrary XML either returns a value or
        raises SoapFault/ValueError — never an unexpected exception."""
        try:
            from_typed_element(doc)
        except (SoapFault, ValueError):
            pass

    @given(st.text(alphabet="abc<>&;/=\"' x1", max_size=60))
    def test_parser_fails_predictably(self, text):
        """parse() on arbitrary text raises XmlParseError or succeeds."""
        from repro.xmlx import XmlParseError

        try:
            parse(text)
        except XmlParseError:
            pass
        except ValueError:
            pass  # numeric charref overflow etc.
