"""Tests for the database layer: engine, SQL dialect, resource stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import (
    BlobResourceStore,
    Column,
    Database,
    DbError,
    NoSuchResource,
    SqlError,
    XmlResourceStore,
    execute_sql,
)
from repro.db.resource_store import decode_state, encode_state
from repro.xmlx import NS, QName


def _jobs_table(db):
    return db.create_table(
        "jobs",
        [
            Column("id", "TEXT", primary_key=True),
            Column("status", "TEXT", nullable=False),
            Column("cpu", "REAL"),
            Column("exit_code", "INTEGER"),
        ],
    )


class TestEngine:
    def test_insert_and_get(self):
        db = Database()
        t = _jobs_table(db)
        t.insert({"id": "j1", "status": "Running", "cpu": 1.5})
        row = t.get("j1")
        assert row["status"] == "Running"
        assert row["exit_code"] is None

    def test_duplicate_pk_rejected(self):
        t = _jobs_table(Database())
        t.insert({"id": "j1", "status": "Running"})
        with pytest.raises(DbError, match="duplicate"):
            t.insert({"id": "j1", "status": "Exited"})

    def test_type_checking(self):
        t = _jobs_table(Database())
        with pytest.raises(DbError, match="expects TEXT"):
            t.insert({"id": "j1", "status": 7})
        with pytest.raises(DbError, match="expects INTEGER"):
            t.insert({"id": "j1", "status": "ok", "exit_code": "zero"})
        with pytest.raises(DbError, match="expects INTEGER"):
            t.insert({"id": "j1", "status": "ok", "exit_code": True})

    def test_not_null_enforced(self):
        t = _jobs_table(Database())
        with pytest.raises(DbError, match="NOT NULL"):
            t.insert({"id": "j1", "status": None})

    def test_unknown_column_rejected(self):
        t = _jobs_table(Database())
        with pytest.raises(DbError, match="unknown columns"):
            t.insert({"id": "j1", "status": "ok", "bogus": 1})

    def test_select_with_equals_and_predicate(self):
        t = _jobs_table(Database())
        for i in range(10):
            t.insert(
                {"id": f"j{i}", "status": "Running" if i % 2 else "Exited", "cpu": float(i)}
            )
        running = t.select(equals={"status": "Running"})
        assert len(running) == 5
        hot = t.select(where=lambda r: (r["cpu"] or 0) > 7)
        assert {r["id"] for r in hot} == {"j8", "j9"}
        combo = t.select(equals={"status": "Running"}, where=lambda r: r["cpu"] > 7)
        assert [r["id"] for r in combo] == ["j9"]

    def test_select_projection(self):
        t = _jobs_table(Database())
        t.insert({"id": "j1", "status": "Running"})
        rows = t.select(columns=["id"])
        assert rows == [{"id": "j1"}]
        with pytest.raises(DbError):
            t.select(columns=["nope"])

    def test_select_returns_copies(self):
        t = _jobs_table(Database())
        t.insert({"id": "j1", "status": "Running"})
        t.select()[0]["status"] = "Hacked"
        assert t.get("j1")["status"] == "Running"

    def test_update(self):
        t = _jobs_table(Database())
        t.insert({"id": "j1", "status": "Running"})
        n = t.update({"status": "Exited", "exit_code": 0}, equals={"id": "j1"})
        assert n == 1
        assert t.get("j1")["exit_code"] == 0

    def test_update_pk_rejected(self):
        t = _jobs_table(Database())
        t.insert({"id": "j1", "status": "Running"})
        with pytest.raises(DbError, match="primary key"):
            t.update({"id": "j2"}, equals={"id": "j1"})

    def test_delete(self):
        t = _jobs_table(Database())
        for i in range(4):
            t.insert({"id": f"j{i}", "status": "Exited"})
        assert t.delete(equals={"id": "j2"}) == 1
        assert len(t) == 3
        assert t.delete(where=lambda r: True) == 3
        assert len(t) == 0

    def test_secondary_index_consistency(self):
        t = _jobs_table(Database())
        t.create_index("status")
        for i in range(6):
            t.insert({"id": f"j{i}", "status": "Running"})
        t.update({"status": "Exited"}, equals={"id": "j0"})
        assert len(t.select(equals={"status": "Running"})) == 5
        assert len(t.select(equals={"status": "Exited"})) == 1
        t.delete(equals={"id": "j1"})
        assert len(t.select(equals={"status": "Running"})) == 4

    def test_index_on_missing_column(self):
        t = _jobs_table(Database())
        with pytest.raises(DbError):
            t.create_index("nope")

    def test_schema_validation(self):
        db = Database()
        with pytest.raises(DbError, match="unknown column type"):
            Column("x", "VARCHAR")
        with pytest.raises(DbError, match="at least one"):
            db.create_table("t", [])
        with pytest.raises(DbError, match="multiple primary"):
            db.create_table(
                "t",
                [Column("a", "TEXT", primary_key=True), Column("b", "TEXT", primary_key=True)],
            )
        with pytest.raises(DbError, match="duplicate column"):
            db.create_table("t", [Column("a", "TEXT"), Column("a", "TEXT")])

    def test_drop_table(self):
        db = Database()
        _jobs_table(db)
        db.drop_table("jobs")
        with pytest.raises(DbError):
            db.table("jobs")
        with pytest.raises(DbError):
            db.drop_table("jobs")


class TestSql:
    @pytest.fixture()
    def db(self):
        db = Database()
        execute_sql(
            db,
            "CREATE TABLE jobs (id TEXT PRIMARY KEY, status TEXT NOT NULL, cpu REAL)",
        )
        return db

    def test_create_insert_select(self, db):
        execute_sql(db, "INSERT INTO jobs (id, status, cpu) VALUES (?, ?, ?)", ["j1", "R", 1.0])
        execute_sql(db, "INSERT INTO jobs (id, status, cpu) VALUES (?, ?, ?)", ["j2", "E", 2.0])
        rows = execute_sql(db, "SELECT id, cpu FROM jobs WHERE status = ?", ["R"])
        assert rows == [{"id": "j1", "cpu": 1.0}]
        all_rows = execute_sql(db, "SELECT * FROM jobs")
        assert len(all_rows) == 2

    def test_update_and_delete(self, db):
        execute_sql(db, "INSERT INTO jobs (id, status) VALUES (?, ?)", ["j1", "R"])
        n = execute_sql(db, "UPDATE jobs SET status = ?, cpu = ? WHERE id = ?", ["E", 9.0, "j1"])
        assert n == 1
        assert execute_sql(db, "SELECT status FROM jobs WHERE id = ?", ["j1"]) == [
            {"status": "E"}
        ]
        assert execute_sql(db, "DELETE FROM jobs WHERE id = ?", ["j1"]) == 1

    def test_where_and_conjunction(self, db):
        execute_sql(db, "INSERT INTO jobs (id, status, cpu) VALUES (?, ?, ?)", ["j1", "R", 1.0])
        execute_sql(db, "INSERT INTO jobs (id, status, cpu) VALUES (?, ?, ?)", ["j2", "R", 2.0])
        rows = execute_sql(
            db, "SELECT id FROM jobs WHERE status = ? AND cpu = ?", ["R", 2.0]
        )
        assert rows == [{"id": "j2"}]

    def test_param_count_mismatch(self, db):
        with pytest.raises(SqlError, match="not enough parameters"):
            execute_sql(db, "INSERT INTO jobs (id, status) VALUES (?, ?)", ["j1"])
        with pytest.raises(SqlError, match="consumed"):
            execute_sql(db, "SELECT * FROM jobs", ["extra"])

    def test_literals_rejected(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "INSERT INTO jobs (id) VALUES ('j1')")
        with pytest.raises(SqlError, match="unsupported WHERE"):
            execute_sql(db, "SELECT * FROM jobs WHERE id = 'j1'")

    def test_unrecognized_statement(self, db):
        with pytest.raises(SqlError, match="unrecognized"):
            execute_sql(db, "TRUNCATE jobs")

    def test_type_errors_surface(self, db):
        with pytest.raises(DbError, match="expects TEXT"):
            execute_sql(db, "INSERT INTO jobs (id, status) VALUES (?, ?)", ["j1", 5])


_STATUS = QName(NS.UVACG, "Status")
_CPU = QName(NS.UVACG, "CpuTime")
_OWNER = QName(NS.UVACG, "Owner")


def _state(i):
    return {
        _STATUS: "Running" if i % 3 else "Exited",
        _CPU: float(i),
        _OWNER: f"user{i % 2}",
    }


class TestStateCodec:
    def test_roundtrip(self):
        state = _state(4)
        assert decode_state(encode_state(state)) == state

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            decode_state(b"<other/>")

    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=6).map(
                lambda s: QName(NS.UVACG, s)
            ),
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
                st.binary(max_size=20),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    def test_roundtrip_property(self, state):
        assert decode_state(encode_state(state)) == state


@pytest.mark.parametrize("store_cls", [BlobResourceStore, XmlResourceStore])
class TestResourceStores:
    def test_crud_lifecycle(self, store_cls):
        store = store_cls()
        store.create("ExecService", "j1", _state(1))
        assert store.exists("ExecService", "j1")
        assert store.load("ExecService", "j1")[_CPU] == 1.0
        new_state = dict(_state(1))
        new_state[_CPU] = 9.5
        store.save("ExecService", "j1", new_state)
        assert store.load("ExecService", "j1")[_CPU] == 9.5
        store.destroy("ExecService", "j1")
        assert not store.exists("ExecService", "j1")

    def test_missing_resource_raises(self, store_cls):
        store = store_cls()
        with pytest.raises(NoSuchResource):
            store.load("S", "nope")
        with pytest.raises(NoSuchResource):
            store.save("S", "nope", {})
        with pytest.raises(NoSuchResource):
            store.destroy("S", "nope")

    def test_list_ids_scoped_by_service(self, store_cls):
        store = store_cls()
        store.create("A", "r2", _state(0))
        store.create("A", "r1", _state(1))
        store.create("B", "r9", _state(2))
        assert store.list_ids("A") == ["r1", "r2"]
        assert store.list_ids("B") == ["r9"]
        assert store.list_ids("C") == []

    def test_scan_query_finds_matches(self, store_cls):
        store = store_cls()
        for i in range(9):
            store.create("ES", f"j{i}", _state(i))
        hits = store.scan_query("ES", "Status[.='Exited']")
        ids = [rid for rid, _ in hits]
        assert ids == ["j0", "j3", "j6"]

    def test_scan_query_no_matches(self, store_cls):
        store = store_cls()
        store.create("ES", "j1", _state(1))
        assert store.scan_query("ES", "Status[.='Bogus']") == []

    def test_counters(self, store_cls):
        store = store_cls()
        store.create("S", "r", _state(0))
        store.load("S", "r")
        store.save("S", "r", _state(1))
        store.scan_query("S", "Status")
        assert store.loads == 1
        assert store.saves == 2
        assert store.scans == 1

    def test_stores_agree_on_query_results(self, store_cls):
        """Cross-check: both backends must answer queries identically."""
        blob, xml = BlobResourceStore(), XmlResourceStore()
        for i in range(12):
            blob.create("ES", f"j{i}", _state(i))
            xml.create("ES", f"j{i}", _state(i))
        q = "Owner[.='user1']"
        blob_ids = [rid for rid, _ in blob.scan_query("ES", q)]
        xml_ids = [rid for rid, _ in xml.scan_query("ES", q)]
        assert blob_ids == xml_ids

    def test_xml_duplicate_create_rejected(self, store_cls):
        store = store_cls()
        store.create("S", "r", _state(0))
        with pytest.raises((ValueError, DbError)):
            store.create("S", "r", _state(1))
