"""Tests for the unified observability layer (repro.obs)."""

import json
import math

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.net import Network
from repro.obs import (
    MetricsRegistry,
    Observability,
    SpanRecorder,
    format_metric_name,
    load_snapshot,
    obs_of,
    render_dashboard,
    render_trace,
)
from repro.osim.programs import make_compute_program
from repro.sim import Environment


class TestMetricsRegistry:
    def test_counter_identity_is_name_plus_labels(self):
        reg = MetricsRegistry()
        reg.inc("net.messages", scheme="soap.tcp")
        reg.inc("net.messages", scheme="soap.tcp", amount=2)
        reg.inc("net.messages", scheme="http")
        assert reg.value("net.messages", scheme="soap.tcp") == 3
        assert reg.value("net.messages", scheme="http") == 1
        assert reg.value("net.messages") == 0  # unlabeled is distinct

    def test_counter_rejects_negative_and_kind_mismatch(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        reg.gauge("pool.free").set(25)
        reg.gauge("pool.free").inc(-3)
        assert reg.value("pool.free") == 22

    def test_histogram_quantiles_nearest_rank(self):
        reg = MetricsRegistry()
        for v in [5.0, 1.0, 2.0, 4.0, 3.0]:
            reg.observe("lat_s", v)
        hist = reg.histogram("lat_s")
        assert hist.count == 5
        assert hist.sum == 15.0
        assert hist.max == 5.0
        assert hist.p50 == 3.0
        assert hist.p95 == 5.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 5.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("h")
        assert (hist.count, hist.sum, hist.max, hist.p50) == (0, 0.0, 0.0, 0.0)

    def test_value_on_histogram_raises(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        with pytest.raises(TypeError):
            reg.value("h")

    def test_query_pattern_and_order(self):
        reg = MetricsRegistry()
        reg.inc("net.messages", scheme="soap.tcp")
        reg.inc("net.messages")
        reg.inc("net.drops")
        reg.inc("wsrf.invocations")
        names = [format_metric_name(n, labels) for n, labels, _ in reg.query("net.*")]
        assert names == ["net.drops", "net.messages", "net.messages{scheme=soap.tcp}"]

    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.observe("c_s", 0.5)
        snap = reg.snapshot()
        assert [entry["name"] for entry in snap] == ["a", "b", "c_s"]
        json.dumps(snap)  # must not raise
        assert snap[2]["kind"] == "histogram" and snap[2]["p95"] == 0.5


class TestSpanRecorder:
    def _recorder(self):
        env = Environment()
        return env, SpanRecorder(env, MetricsRegistry())

    def test_message_id_stack_chains_layers(self):
        env, rec = self._recorder()
        outer = rec.start("client.invoke", message_id="m1")
        mid = rec.start("net.request", message_id="m1")
        inner = rec.start("wsrf.dispatch", message_id="m1")
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        rec.finish(inner)
        sibling = rec.start("iis.handle", message_id="m1")
        assert sibling.parent_id == mid.span_id  # innermost OPEN span wins

    def test_explicit_parent_wins_over_message_id(self):
        env, rec = self._recorder()
        a = rec.start("a", message_id="m1")
        b = rec.start("b", parent=a, message_id="m2")
        assert b.parent_id == a.span_id
        c = rec.start("c", message_id="m2")
        assert c.parent_id == b.span_id  # b registered under m2 despite parent

    def test_finish_is_idempotent_and_feeds_histogram(self):
        env, rec = self._recorder()
        span = rec.start("net.request", attrs={"scheme": "http", "epr": "uuid:x"})
        env.run(until=0.25)
        rec.finish(span)
        env.run(until=0.75)
        rec.finish(span)  # no-op
        assert span.duration == 0.25
        hist = rec.registry.histogram("net.request_s", scheme="http")
        assert hist.count == 1 and hist.p50 == 0.25
        # high-cardinality attrs (epr) must NOT become labels
        assert rec.registry.query("net.request_s") == [
            ("net.request_s", {"scheme": "http"}, hist)
        ]

    def test_finish_subtree_closes_descendants(self):
        env, rec = self._recorder()
        root = rec.start("root")
        child = rec.start("child", parent=root)
        grandchild = rec.start("grand", parent=child)
        other = rec.start("other")
        rec.finish_subtree(root)
        assert root.finished and child.finished and grandchild.finished
        assert not other.finished
        assert rec.open_spans() == [other]

    def test_finish_subtree_skips_detached_live_sends(self):
        env, rec = self._recorder()
        dispatch = rec.start("wsrf.dispatch")
        oneway = rec.start("net.oneway", parent=dispatch, message_id="m9")
        oneway.detached = True  # ownership moved to the delivery process
        rec.finish_subtree(dispatch)  # the dispatch ends first
        assert dispatch.finished
        assert not oneway.finished
        # delivery-side spans can still parent to the in-flight send
        env.run(until=0.5)
        handle = rec.start("iis.handle", message_id="m9")
        assert handle.parent_id == oneway.span_id
        rec.finish(handle)
        rec.finish_subtree(oneway)  # the owner's close always lands
        assert oneway.finished and oneway.duration == 0.5

    def test_slowest_and_queries(self):
        env, rec = self._recorder()
        fast = rec.start("a")
        slow = rec.start("b")
        rec.finish(fast)
        env.run(until=1.0)
        rec.finish(slow)
        assert rec.slowest(1) == [slow]
        assert rec.get(fast.span_id) is fast
        assert rec.roots() == [fast, slow]
        assert rec.named("b") == [slow]
        assert rec.children(slow) == []

    def test_snapshot_shape(self):
        env, rec = self._recorder()
        span = rec.start("s", attrs={"b": 1, "a": 2})
        snap = rec.snapshot()
        assert snap == [
            {"id": span.span_id, "parent": None, "name": "s", "start": 0.0,
             "end": None, "attrs": {"a": 2, "b": 1}}
        ]


def _run_jobset(observability, n_jobs=3, seed=11):
    testbed = Testbed(
        n_machines=2, seed=seed, machine_speeds=[1.0, 1.0],
        observability=observability,
    )
    testbed.programs.register(
        make_compute_program("work", 5.0, outputs={"out": b"x"})
    )
    client = testbed.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(testbed.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = testbed.run_job_set(client, spec)
    assert outcome == "completed"
    testbed.settle()
    return testbed


@pytest.fixture(scope="module")
def observed_run():
    return _run_jobset(observability=True)


class TestEndToEnd:
    def test_span_tree_covers_every_layer(self, observed_run):
        obs = observed_run.obs
        rec = obs.spans
        assert rec.open_spans() == []
        by_id = {span.span_id: span for span in rec.spans}

        submits = [
            s for s in rec.named("client.invoke")
            if s.attrs.get("operation") == "SubmitJobSet"
        ]
        assert len(submits) == 1
        (submit,) = submits
        assert submit.parent_id is None

        # client send → net.request → iis.handle → wsrf.dispatch → stages
        net = [s for s in rec.children(submit) if s.name == "net.request"]
        assert len(net) == 1
        iis = [s for s in rec.children(net[0]) if s.name == "iis.handle"]
        assert len(iis) == 1
        dispatch = [s for s in rec.children(iis[0]) if s.name == "wsrf.dispatch"]
        assert len(dispatch) == 1
        assert dispatch[0].attrs["service"] == "Scheduler"
        stage_names = {s.name for s in rec.children(dispatch[0])}
        assert {
            "wsrf.dispatch.queue", "wsrf.dispatch.epr_resolve",
            "wsrf.dispatch.method", "wsrf.dispatch.db_save",
        } <= stage_names
        # link transit legs under the network span
        legs = {s.attrs["leg"] for s in rec.children(net[0]) if s.name == "net.transit"}
        assert legs == {"request", "response"}

        # broker fan-out: every wsn.publish parented to a dispatch span
        publishes = rec.named("wsn.publish")
        assert publishes, "job events must fan out through wsn.publish"
        for pub in publishes:
            assert pub.parent_id is not None
            assert by_id[pub.parent_id].name == "wsrf.dispatch"
        broker_pubs = [
            p for p in publishes if p.attrs["service"] == "NotificationBroker"
        ]
        assert broker_pubs, "broker republish must be part of the span tree"

    def test_every_iis_handle_rides_a_transport_span(self, observed_run):
        # One-way sends outlive the dispatch that spawned them; the
        # detached net.oneway span must stay open until delivery so the
        # receiver's iis.handle parents to it instead of orphaning.
        rec = observed_run.obs.spans
        by_id = {span.span_id: span for span in rec.spans}
        handles = rec.named("iis.handle")
        assert handles
        for handle in handles:
            assert handle.parent_id is not None, handle.attrs
            parent = by_id[handle.parent_id]
            assert parent.name in ("net.request", "net.oneway")
            # the transport span covers the whole delivery
            assert parent.start <= handle.start
            assert parent.end >= handle.end

    def test_fig1_stages_partition_dispatch_latency(self, observed_run):
        rec = observed_run.obs.spans
        dispatches = rec.named("wsrf.dispatch")
        assert len(dispatches) >= 10
        for dispatch in dispatches:
            stages = [
                s for s in rec.children(dispatch)
                if s.name.startswith("wsrf.dispatch.")
            ]
            stage_sum = sum(s.duration for s in stages)
            assert dispatch.duration > 0
            # acceptance criterion: stage sum within 5% of dispatch latency
            assert math.isclose(stage_sum, dispatch.duration, rel_tol=0.05), (
                dispatch.attrs, stage_sum, dispatch.duration,
            )

    def test_registry_mirrors_adhoc_counters(self, observed_run):
        obs = observed_run.obs
        reg = obs.collect()
        stats = observed_run.network.stats
        assert reg.value("net.messages") == stats.messages
        assert reg.value("net.bytes") == stats.bytes
        for scheme, count in stats.by_scheme.items():
            assert reg.value("net.messages", scheme=scheme) == count
        total_invocations = sum(
            m.value for _, _, m in reg.query("wsrf.invocations")
        )
        wrappers = [observed_run.scheduler, observed_run.broker,
                    observed_run.node_info]
        wrappers += list(observed_run.fss.values())
        wrappers += list(observed_run.es.values())
        assert total_invocations == sum(w.invocations for w in wrappers)
        assert reg.value(
            "iis.requests_served", host="uvacg-central"
        ) == observed_run.central.iis.requests_served
        assert reg.value(
            "wsn.notifications_sent", service="NotificationBroker",
            host="uvacg-central",
        ) == observed_run.broker.notification_producer.notifications_sent

    def test_dispatch_histograms_fed_from_spans(self, observed_run):
        reg = observed_run.obs.registry
        entries = reg.query("wsrf.dispatch_s")
        assert entries
        rec = observed_run.obs.spans
        assert sum(m.count for _, _, m in entries) == len(rec.named("wsrf.dispatch"))
        for _name, labels, _metric in entries:
            assert set(labels) <= {"service", "host", "operation"}

    def test_observability_adds_zero_simulated_latency(self):
        with_obs = _run_jobset(observability=True, n_jobs=2, seed=7)
        without = _run_jobset(observability=False, n_jobs=2, seed=7)
        assert with_obs.env.now == without.env.now
        assert with_obs.network.stats.messages == without.network.stats.messages

    def test_disabled_mode_allocates_nothing(self):
        testbed = _run_jobset(observability=False, n_jobs=1, seed=5)
        assert testbed.obs is None
        assert testbed.network.obs is None
        assert obs_of(testbed.network) is None
        assert obs_of(testbed.central) is None

    def test_seeded_runs_export_identical_json(self):
        a = _run_jobset(observability=True, n_jobs=2, seed=3).obs.export_json()
        b = _run_jobset(observability=True, n_jobs=2, seed=3).obs.export_json()
        assert a == b  # byte-identical

    def test_obs_of_resolves_through_machines(self, observed_run):
        assert obs_of(observed_run.network) is observed_run.obs
        assert obs_of(observed_run.central) is observed_run.obs
        assert obs_of(observed_run.machines[0]) is observed_run.obs


class TestDashboard:
    def test_render_dashboard_sections(self, observed_run):
        snapshot = observed_run.obs.snapshot()
        text = render_dashboard(snapshot, top=5)
        assert "Fig. 1 pipeline-stage breakdown" in text
        assert "wsrf.dispatch.db_load" in text
        assert "top 5 slowest spans" in text
        assert "net metrics" in text
        assert "slowest trace" in text

    def test_render_trace_unknown_root(self, observed_run):
        assert "no span #999999" in render_trace(observed_run.obs.snapshot(), 999999)

    def test_load_snapshot_roundtrip_and_validation(self, observed_run):
        text = observed_run.obs.export_json()
        snapshot = load_snapshot(text)
        assert snapshot["meta"]["format"] == 1
        with pytest.raises(ValueError):
            load_snapshot("[1, 2, 3]")

    def test_snapshot_meta_counts(self, observed_run):
        snapshot = observed_run.obs.snapshot()
        assert snapshot["meta"]["spans"] == len(snapshot["spans"])
        assert snapshot["meta"]["open_spans"] == 0
        assert snapshot["meta"]["now"] == observed_run.env.now


class TestCli:
    def test_demo_renders_and_exports(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out_file = tmp_path / "obs.json"
        code = main(["--machines", "1", "--jobs", "1", "--json", str(out_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Fig. 1 pipeline-stage breakdown" in printed
        snapshot = load_snapshot(out_file.read_text(encoding="utf-8"))
        assert snapshot["spans"]

    def test_render_subcommand(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        env = Environment()
        net = Network(env)
        obs = Observability(env).attach(net)
        span = obs.start_span("wsrf.dispatch", attrs={"service": "S"})
        obs.finish(span)
        path = tmp_path / "snap.json"
        path.write_text(obs.export_json(), encoding="utf-8")
        assert main(["render", str(path)]) == 0
        assert "wsrf.dispatch" in capsys.readouterr().out
