"""Tests for the simulation Lock primitive."""

import pytest

from repro.sim import Environment
from repro.sim.sync import Lock


class TestLock:
    def test_uncontended_acquire_immediate(self):
        env = Environment()
        lock = Lock(env)
        done = []

        def proc(env):
            yield lock.acquire()
            done.append(env.now)
            lock.release()

        env.process(proc(env))
        env.run()
        assert done == [0.0]
        assert not lock.locked

    def test_fifo_ordering(self):
        env = Environment()
        lock = Lock(env)
        order = []

        def worker(env, tag, hold):
            yield lock.acquire()
            order.append(tag)
            yield env.timeout(hold)
            lock.release()

        env.process(worker(env, "a", 1.0))
        env.process(worker(env, "b", 1.0))
        env.process(worker(env, "c", 1.0))
        env.run()
        assert order == ["a", "b", "c"]
        assert env.now == pytest.approx(3.0)

    def test_mutual_exclusion_invariant(self):
        env = Environment()
        lock = Lock(env)
        inside = {"count": 0, "max": 0}

        def worker(env):
            yield lock.acquire()
            inside["count"] += 1
            inside["max"] = max(inside["max"], inside["count"])
            yield env.timeout(0.5)
            inside["count"] -= 1
            lock.release()

        for _ in range(10):
            env.process(worker(env))
        env.run()
        assert inside["max"] == 1

    def test_release_unlocked_rejected(self):
        env = Environment()
        lock = Lock(env)
        with pytest.raises(RuntimeError, match="unlocked"):
            lock.release()

    def test_handoff_does_not_unlock(self):
        """Releasing with waiters hands the lock over directly."""
        env = Environment()
        lock = Lock(env)
        log = []

        def first(env):
            yield lock.acquire()
            yield env.timeout(1.0)
            lock.release()
            log.append(("first-released", lock.locked))

        def second(env):
            yield env.timeout(0.1)
            yield lock.acquire()
            log.append(("second-acquired", env.now))
            lock.release()

        env.process(first(env))
        env.process(second(env))
        env.run()
        assert ("first-released", True) in log  # still locked at handoff
        assert ("second-acquired", 1.0) in log
        assert not lock.locked
