"""Additional coverage: WSDL helpers, client plumbing edge cases, and
the one-way MEP at the WSRF layer."""

import pytest

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsa import EndpointReference
from repro.wsrf import (
    GetResourcePropertyPortType,
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
    generate_wsdl,
)
from repro.wsrf.wsdl import wsdl_operations, wsdl_resource_properties
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG


@WSRFPortType(GetResourcePropertyPortType)
class PingService(ServiceSkeleton):
    notes = Resource(default=None)

    @ResourceProperty
    @property
    def Notes(self):
        return self.notes

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource(notes=[]))

    @WebMethod(requires_resource=False)
    def Ping(self, payload: str = "") -> str:
        return f"pong:{payload}"

    @WebMethod(one_way=True)
    def Record(self, note: str):
        self.notes = list(self.notes or []) + [note]

    @WebMethod
    def GetNotes(self):
        return self.notes


@pytest.fixture()
def fabric():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "server")
    wrapper = deploy(PingService, machine, "Ping")
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, net, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestOneWayAtWsrfLayer:
    def test_one_way_author_method_mutates_state(self, fabric):
        env, net, wrapper, client = fabric
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        run(env, client.call(epr, UVA, "Record", {"note": "n1"}, one_way=True))
        env.run(until=env.now + 1.0)  # let the detached handler finish
        assert run(env, client.call(epr, UVA, "GetNotes")) == ["n1"]

    def test_one_way_returns_immediately(self, fabric):
        env, net, wrapper, client = fabric
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        t0 = env.now
        run(env, client.call(epr, UVA, "Record", {"note": "x"}, one_way=True))
        send_time = env.now - t0
        t1 = env.now
        run(env, client.call(epr, UVA, "GetNotes"))
        rpc_time = env.now - t1
        assert send_time < rpc_time  # no response leg, no handler wait

    def test_one_way_fault_is_silent(self, fabric):
        env, net, wrapper, client = fabric
        # Record on a nonexistent resource: the handler faults, but the
        # one-way sender cannot observe it.
        ghost = wrapper.epr_for("ghost")
        run(env, client.call(ghost, UVA, "Record", {"note": "x"}, one_way=True))
        env.run(until=env.now + 1.0)
        assert wrapper.faults_returned >= 1  # fault happened service-side


class TestClientEdgeCases:
    def test_default_action_from_body(self, fabric):
        env, net, wrapper, client = fabric
        body = Element(QName(UVA, "Ping"))
        response = run(env, client.invoke(wrapper.service_epr(), body))
        assert response.tag.local == "PingResponse"

    def test_explicit_action_override(self, fabric):
        env, net, wrapper, client = fabric
        body = Element(QName(UVA, "Ping"))
        response = run(
            env,
            client.invoke(wrapper.service_epr(), body, action="urn:custom-action"),
        )
        assert response.tag.local == "PingResponse"

    def test_void_result_is_none(self, fabric):
        env, net, wrapper, client = fabric
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        assert run(env, client.call(epr, UVA, "Record", {"note": "n"})) is None

    def test_default_argument_used(self, fabric):
        env, net, wrapper, client = fabric
        assert run(env, client.call(wrapper.service_epr(), UVA, "Ping")) == "pong:"

    def test_unknown_host_surfaces(self, fabric):
        env, net, wrapper, client = fabric
        from repro.net import DeliveryError

        with pytest.raises(DeliveryError):
            run(
                env,
                client.call(EndpointReference("http://nowhere/Svc"), UVA, "Ping"),
            )


class TestWsdlHelpers:
    def test_one_way_operations_have_no_output(self, fabric):
        env, net, wrapper, client = fabric
        doc = generate_wsdl(wrapper)
        for pt in doc.findall(QName(NS.WSDL, "portType")):
            if pt.get("name") != "PingServicePortType":
                continue
            for op in pt.findall(QName(NS.WSDL, "operation")):
                outputs = op.findall(QName(NS.WSDL, "input"))
                has_output = op.find(QName(NS.WSDL, "output")) is not None
                if op.get("name") == "Record":
                    assert not has_output  # one-way: input only
                else:
                    assert has_output

    def test_helpers_cover_all_ops_and_rps(self, fabric):
        env, net, wrapper, client = fabric
        doc = generate_wsdl(wrapper)
        ops = wsdl_operations(doc)
        assert set(ops["PingServicePortType"]) == {
            "Create", "Ping", "Record", "GetNotes",
        }
        rps = wsdl_resource_properties(doc)
        assert QName(UVA, "Notes") in rps

    def test_wsdl_discovery_drives_generic_client(self, fabric):
        """A client that knows only the WSDL can pick an RP and fetch it
        — §5's 'higher-level interfaces' working end-to-end."""
        env, net, wrapper, client = fabric
        doc = generate_wsdl(wrapper)
        advertised = wsdl_resource_properties(doc)
        app_rps = [q for q in advertised if q.uri == UVA]
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        value = run(env, client.get_resource_property(epr, app_rps[0]))
        assert value == []
