"""Tests for the GT4/Linux interoperability extension (paper §6).

The paper's stated next step was interoperating WSRF.NET with Globus
Toolkit v4 so the campus grid spans Windows and Linux.  These tests run
mixed grids: the same WSRF wire, WSRF.NET-style UsernameToken auth on
Windows nodes, GSI-style X.509 + grid-mapfile auth on GT4 nodes.
"""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.gt4 import ForkSpawnService, Gt4Params, LinuxMachine
from repro.net import Network
from repro.osim import SpawnError
from repro.osim.programs import make_compute_program
from repro.sim import Environment
from repro.wssec import (
    CertificateAuthority,
    SecurityError,
    build_x509_security_header,
    open_x509_security_header,
)
from repro.wssec.x509 import enroll
from repro.xmlx import NS, QName, parse, to_string

UVA = NS.UVACG


class TestX509Tokens:
    def test_roundtrip_through_wire(self):
        ca = CertificateAuthority()
        keys, cert = enroll(ca, "CN=alice/O=UVaCG")
        header = build_x509_security_header(keys, cert, timestamp=10.0)
        reparsed = parse(to_string(header))
        verified = open_x509_security_header(reparsed, ca, now=12.0)
        assert verified.subject == "CN=alice/O=UVaCG"

    def test_untrusted_ca_rejected(self):
        good_ca, rogue_ca = CertificateAuthority(), CertificateAuthority("Rogue")
        keys, cert = enroll(rogue_ca, "CN=eve")
        header = build_x509_security_header(keys, cert, timestamp=0.0)
        with pytest.raises(SecurityError, match="certificate rejected"):
            open_x509_security_header(header, good_ca, now=1.0)

    def test_stale_timestamp_rejected(self):
        ca = CertificateAuthority()
        keys, cert = enroll(ca, "CN=alice")
        header = build_x509_security_header(keys, cert, timestamp=0.0)
        with pytest.raises(SecurityError, match="acceptance window"):
            open_x509_security_header(header, ca, now=10_000.0)

    def test_forged_signature_rejected(self):
        ca = CertificateAuthority()
        keys, cert = enroll(ca, "CN=alice")
        _, mallory_cert = enroll(ca, "CN=mallory")
        # Mallory presents Alice's cert but signs with her own key —
        # splice Alice's cert into a header Mallory built.
        mallory_keys, _ = enroll(ca, "CN=mallory2")
        header = build_x509_security_header(mallory_keys, cert, timestamp=0.0)
        with pytest.raises(SecurityError, match="signature verification failed"):
            open_x509_security_header(header, ca, now=1.0)

    def test_wrong_structure_rejected(self):
        ca = CertificateAuthority()
        from repro.xmlx import Element

        with pytest.raises(SecurityError, match="lacks an X509Token"):
            open_x509_security_header(
                Element(QName(NS.WSSE, "Security")), ca, now=0.0
            )


class TestLinuxMachine:
    def test_fork_spawn_skips_password(self):
        env = Environment()
        net = Network(env)
        machine = LinuxMachine(net, "linux-a")
        machine.users.add_user("grid", "irrelevant")
        machine.programs.define("p", lambda ctx: 0)
        machine.fs.mkdir("/var/uvacg/wd")
        machine.fs.write_file("/var/uvacg/wd/job", b"#!uva-program:p\n")

        def do(env):
            process = yield from machine.procspawn.spawn(
                "/var/uvacg/wd/job", [], "grid", "WRONG-PASSWORD", "/var/uvacg/wd"
            )
            return (yield process.done)

        proc = env.process(do(env))
        env.run(until=proc)
        assert proc.value == 0

    def test_fork_spawn_requires_account(self):
        env = Environment()
        net = Network(env)
        machine = LinuxMachine(net, "linux-a")

        def do(env):
            yield from machine.procspawn.spawn("/x", [], "ghost", "", "/var/uvacg")

        with pytest.raises(SpawnError, match="nonexistent local account"):
            env.run(until=env.process(do(env)))

    def test_fork_is_cheaper_than_createprocess(self):
        assert Gt4Params().proc_spawn_s < 0.02  # vs 0.05 for CreateProcessAsUser

    def test_uses_fork_service(self):
        env = Environment()
        net = Network(env)
        machine = LinuxMachine(net, "linux-a")
        assert isinstance(machine.procspawn, ForkSpawnService)
        assert machine.container is machine.iis

    def test_posix_grid_root(self):
        env = Environment()
        net = Network(env)
        machine = LinuxMachine(net, "linux-a")
        assert machine.fs.is_dir("/var/uvacg")


@pytest.fixture()
def mixed_grid():
    tb = Testbed(n_machines=2, n_linux_machines=2, seed=61,
                 machine_speeds=[1.0, 1.0])
    tb.programs.register(
        make_compute_program("xjob", 2.0, outputs={"out": b"ran"})
    )
    return tb


def _spec_for(client, tb, n=1):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("xjob"))
    for i in range(n):
        spec.add(JobSpec(name=f"j{i}", executable=FileRef(exe, "job.exe"),
                         outputs=["out"]))
    return spec


class TestMixedGrid:
    def test_job_runs_on_linux_via_gsi(self, mixed_grid):
        tb = mixed_grid
        client = tb.make_client(grid_identity=True)
        # Force placement onto a Linux node by loading the Windows ones
        # out of contention (speed: linux defaults are 1.0; pin by
        # marking windows nodes busy via the catalog — simplest is a job
        # set big enough to spill onto linux).
        spec = _spec_for(client, tb, n=4)
        outcome, jobset_epr, _ = tb.run_job_set(client, spec)
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        placement = tb.scheduler.store.load("Scheduler", rid)[QName(UVA, "job_machine")]
        linux_used = {m for m in placement.values() if m.startswith("linux")}
        windows_used = {m for m in placement.values() if m.startswith("node")}
        assert linux_used, f"no linux machine used: {placement}"
        assert windows_used, f"no windows machine used: {placement}"

    def test_linux_output_retrievable_cross_platform(self, mixed_grid):
        tb = mixed_grid
        client = tb.make_client(grid_identity=True)
        spec = _spec_for(client, tb, n=4)
        outcome, _, _ = tb.run_job_set(client, spec)
        assert outcome == "completed"
        tb.settle()
        # Fetch an output produced on a linux node via its dir EPR.
        linux_dirs = [
            parse_job_event(n.payload)["dir_epr"]
            for n in client.listener.received
            if parse_job_event(n.payload).get("kind") == "JobCreated"
            and "linux" in parse_job_event(n.payload)["dir_epr"].address
        ]
        assert linux_dirs
        content = tb.run(client.fetch_output(linux_dirs[0], "out"))
        assert content.to_bytes() == b"ran"

    def test_without_grid_identity_linux_dispatch_fails(self, mixed_grid):
        tb = mixed_grid
        client = tb.make_client(grid_identity=False)
        spec = _spec_for(client, tb, n=4)  # must spill onto linux
        outcome, _, _ = tb.run_job_set(client, spec)
        assert outcome == "failed"

    def test_windows_only_jobs_unaffected_by_missing_identity(self, mixed_grid):
        tb = mixed_grid
        client = tb.make_client(grid_identity=False)
        spec = _spec_for(client, tb, n=1)  # fits on windows nodes
        outcome, jobset_epr, _ = tb.run_job_set(client, spec)
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        placement = tb.scheduler.store.load("Scheduler", rid)[QName(UVA, "job_machine")]
        assert all(m.startswith("node") for m in placement.values())

    def test_unmapped_subject_rejected_by_gridmap(self, mixed_grid):
        tb = mixed_grid
        client = tb.make_client(grid_identity=True)
        # Remove the gridmap entries the testbed installed.
        for machine in tb.linux_machines:
            machine.users._grid_map.clear()
        spec = _spec_for(client, tb, n=4)
        outcome, _, _ = tb.run_job_set(client, spec)
        assert outcome == "failed"

    def test_cross_platform_pipeline(self, mixed_grid):
        """Stage 1 on one platform feeds stage 2 possibly on the other —
        inter-FSS transfer across Windows/Linux."""
        tb = mixed_grid
        tb.programs.register(
            make_compute_program("stage2x", 1.0, outputs={"final": b"ok"},
                                 required_inputs=["prev"])
        )
        client = tb.make_client(grid_identity=True)
        spec = client.new_job_set()
        exe1 = client.add_program_binary(tb.programs.get("xjob"))
        exe2 = client.add_program_binary(tb.programs.get("stage2x"))
        # Two parallel first stages (spread over platforms) + a join.
        spec.add(JobSpec(name="a", executable=FileRef(exe1, "job.exe"), outputs=["out"]))
        spec.add(JobSpec(name="b", executable=FileRef(exe1, "job.exe"), outputs=["out"]))
        spec.add(JobSpec(name="c", executable=FileRef(exe1, "job.exe"), outputs=["out"]))
        spec.add(JobSpec(
            name="join",
            executable=FileRef(exe2, "job.exe"),
            inputs=[FileRef("a://out", "prev")],
            outputs=["final"],
        ))
        outcome, _, _ = tb.run_job_set(client, spec)
        assert outcome == "completed"
