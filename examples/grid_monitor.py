#!/usr/bin/env python3
"""A grid monitoring console built purely from standard WSRF interfaces.

§5's argument is that standardized Resource Properties let generic
tooling "work on all services, not just service/client pairs that had
agreed upon their own specific interfaces".  This example is that
tooling: while a job set runs, a monitor that knows *nothing* about the
testbed services beyond their EPRs and WSRF itself

- polls every job's ``Status`` and ``CpuTime`` RPs (GetMultiple),
- queries the Scheduler's job set with XPath (QueryResourceProperties),
- walks the Node Info service group (WS-ServiceGroup Entry RP),
- and tails live WS-Notification events.

Run:  python examples/grid_monitor.py
"""

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.wsrf.servicegroup import ENTRY_RP, parse_entries
from repro.gridapp.node_info import parse_processor_content
from repro.xmlx import NS, QName

UVA = NS.UVACG


def main() -> None:
    testbed = Testbed(n_machines=4, seed=99, utilization_period=0.5,
                      utilization_threshold=0.05)
    testbed.programs.register(
        make_compute_program("crunch", 40.0, outputs={"out": b"d"})
    )
    client = testbed.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(testbed.programs.get("crunch"))
    for i in range(3):
        spec.add(JobSpec(name=f"sim{i}", executable=FileRef(exe, "job.exe")))

    env = testbed.env

    def monitor():
        jobset_epr, topic = yield from client.submit(spec)
        print(f"submitted job set {topic}\n")
        soap = client.soap

        for tick in range(6):
            yield env.timeout(8.0)
            print(f"--- monitor tick at t={env.now:.1f}s ---")

            # 1. Job set status via XPath over the RP document.
            hits = yield from soap.query_resource_properties(
                jobset_epr, "//Status/text()"
            )
            print(f"  job set status (XPath query): {hits}")

            # 2. Per-job Status + CpuTime via GetMultiple.
            job_eprs = {}
            for note in client.listener.received:
                event = parse_job_event(note.payload)
                if event.get("kind") == "JobStarted":
                    job_eprs[event["job_name"]] = event["job_epr"]
            for name in sorted(job_eprs):
                try:
                    values = yield from soap.get_multiple_resource_properties(
                        job_eprs[name],
                        [QName(UVA, "Status"), QName(UVA, "CpuTime")],
                    )
                except Exception as exc:  # job resource may be gone
                    print(f"  {name}: <unavailable: {exc}>")
                    continue
                status = values[QName(UVA, "Status")]
                cpu = values[QName(UVA, "CpuTime")]
                print(f"  {name}: {status:<8s} cpu={cpu:6.2f}s")

            # 3. The processor catalog via the WS-ServiceGroup Entry RP.
            group_epr = testbed.node_info.epr_for(testbed.node_info.nis_group_rid)
            entries = parse_entries(
                (yield from soap.get_resource_property(group_epr, ENTRY_RP))
            )
            load = [
                (parse_processor_content(content)["name"],
                 parse_processor_content(content)["utilization"])
                for _, _, content in entries
                if content is not None
            ]
            bar = "  ".join(f"{n}:{u:4.0%}" for n, u in sorted(load))
            print(f"  processors: {bar}")

            status = yield from soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            if status != "Running":
                print(f"\njob set finished: {status}")
                break

        print("\nlast 8 live notifications the monitor saw:")
        for note in client.listener.received[-8:]:
            print(f"  [{note.at:7.2f}s] {note.topic}")

    testbed.run(monitor())


if __name__ == "__main__":
    main()
