#!/usr/bin/env python3
"""The full UVaCG vision: Windows (WSRF.NET) + Linux (GT4) in one grid.

§6 of the paper: "The overall goal of the UVaCG will be to seamlessly
integrate Windows machines (via WSRF.NET) and Linux/UNIX machines (via
Globus Toolkit v4)" — with interoperability testing against GT 3.9.2
just beginning when the paper was written.  This example runs that
scenario: a scientist with a campus X.509 identity submits one job set;
the Scheduler spreads it across both platforms, authenticating with an
encrypted UsernameToken on Windows nodes and a delegated signed X.509
token + grid-mapfile on Linux nodes; the File System services move
intermediate files across the platform boundary.

Run:  python examples/mixed_campus_grid.py
"""

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG


def main() -> None:
    testbed = Testbed(
        n_machines=2,          # Windows desktops (WSRF.NET / IIS)
        n_linux_machines=2,    # Linux boxes (GT4 Java WS container)
        machine_speeds=[1.0, 1.2],
        seed=2005,
    )
    testbed.programs.register(
        make_compute_program("simulate", 15.0, outputs={"out": b"chunk"})
    )
    testbed.programs.register(
        make_compute_program(
            "collect", 5.0, outputs={"summary.txt": b"4 chunks merged"},
            required_inputs=["c0", "c1", "c2", "c3"],
        )
    )

    print("grid machines:")
    for machine in testbed.machines:
        flavor = "Linux/GT4   " if machine.name.startswith("linux") else "Windows/.NET"
        print(f"  {machine.name}  [{flavor}]  {machine.params.cpu_speed:.1f}x")

    # The scientist enrolls with the campus CA; the testbed adds her
    # subject to every Linux machine's grid-mapfile.
    client = testbed.make_client(grid_identity=True)
    print(f"\nscientist identity: {client.user_cert.subject}")

    spec = client.new_job_set()
    sim_exe = client.add_program_binary(testbed.programs.get("simulate"))
    col_exe = client.add_program_binary(testbed.programs.get("collect"))
    for i in range(4):
        spec.add(JobSpec(name=f"sim{i}", executable=FileRef(sim_exe, "job.exe"),
                         outputs=["out"]))
    spec.add(JobSpec(
        name="collect",
        executable=FileRef(col_exe, "job.exe"),
        inputs=[FileRef(f"sim{i}://out", f"c{i}") for i in range(4)],
        outputs=["summary.txt"],
    ))

    outcome, jobset_epr, topic = testbed.run_job_set(client, spec)
    makespan = testbed.env.now
    testbed.settle()
    print(f"\njob set {topic}: {outcome} in {makespan:.1f}s simulated")

    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = testbed.scheduler.store.load("Scheduler", rid)
    placement = state[QName(UVA, "job_machine")]
    print("\nplacement across platforms:")
    for job in sorted(placement):
        machine = placement[job]
        flavor = "GT4 " if machine.startswith("linux") else ".NET"
        print(f"  {job:<8s} -> {machine}  [{flavor}]")
    platforms = {("linux" if m.startswith("linux") else "windows")
                 for m in placement.values()}
    assert platforms == {"linux", "windows"}, "expected both platforms in play"

    dirs = {
        parse_job_event(n.payload)["job_name"]: parse_job_event(n.payload)["dir_epr"]
        for n in client.listener.received
        if parse_job_event(n.payload).get("kind") == "JobCreated"
    }
    summary = testbed.run(client.fetch_output(dirs["collect"], "summary.txt"))
    print(f"\nfinal summary: {summary.to_bytes().decode()!r}")
    print("(intermediates crossed the Windows/Linux boundary via the FSSes)")


if __name__ == "__main__":
    main()
