#!/usr/bin/env python3
"""Quickstart: run one job on a simulated UVa Campus Grid.

Stands up a three-machine grid (Scheduler, Notification Broker and Node
Info service on a central node; File System + Execution services and the
ProcSpawn / Processor Utilization Windows services on every grid node),
submits a one-job job set from a client machine, waits for the
WS-Notification that it completed, fetches the output file, and prints
the paper's Fig. 3 numbered step trace.

Run:  python examples/quickstart.py
"""

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program


def main() -> None:
    # 1. Assemble the campus grid.
    testbed = Testbed(n_machines=3, seed=2004)
    print(f"grid up: {[m.name for m in testbed.machines]} + uvacg-central\n")

    # 2. Register the "science code" that grid machines can execute.
    #    (In the real testbed this is a Windows binary; here a simulated
    #    program: it checks its input, burns 5 CPU-seconds, writes output.)
    testbed.programs.register(
        make_compute_program(
            "hello-grid",
            work_units=5.0,
            outputs={"results.txt": b"hello from the campus grid\n"},
            required_inputs=["params.txt"],
        )
    )

    # 3. The scientist's client: local files + job set description.
    client = testbed.make_client()
    exe_url = client.add_program_binary(testbed.programs.get("hello-grid"))
    params_url = client.add_local_file("c:/data/params.txt", b"alpha=0.05\n")

    spec = client.new_job_set()
    spec.add(
        JobSpec(
            name="job1",
            executable=FileRef(exe_url, "job.exe"),
            inputs=[FileRef(params_url, "params.txt")],
            outputs=["results.txt"],
        )
    )

    # 4. Submit and wait (the client's listener receives WS-Notification
    #    events as the job moves through the pipeline).
    outcome, jobset_epr, topic = testbed.run_job_set(client, spec)
    finished_at = testbed.env.now
    testbed.settle()  # let trailing notifications land
    print(f"job set {topic}: {outcome} at t={finished_at:.2f}s simulated\n")

    print("progress notifications received by the client:")
    for message in client.progress_messages(topic):
        print(f"  {message}")

    # 5. Fetch the result through the job directory's EPR.
    dir_epr = next(
        parse_job_event(n.payload)["dir_epr"]
        for n in client.listener.received
        if parse_job_event(n.payload).get("kind") == "JobCreated"
    )
    listing = testbed.run(client.list_output_dir(dir_epr))
    result = testbed.run(client.fetch_output(dir_epr, "results.txt"))
    print(f"\nworking directory contents: {listing}")
    print(f"results.txt: {result.to_bytes().decode().strip()!r}")

    # 6. The paper's Fig. 3 ten-step trace, as it actually happened.
    print("\nFig. 3 step trace:")
    print(testbed.trace.format())


if __name__ == "__main__":
    main()
