#!/usr/bin/env python3
"""A dependent job-set pipeline: sequence alignment → merge → analysis.

The paper's job sets are "collections of jobs in which the output of one
is used as input to the next".  This example runs the classic campus
science shape: two independent alignment jobs fan out across machines,
a merge job joins their outputs, and an analysis job consumes the merge
— four jobs, three dependency edges, with every intermediate file moved
by the File System services using the ``jobN://`` URIs of §4.6.

Run:  python examples/bioinformatics_pipeline.py
"""

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import Program


def align_program(label: str) -> Program:
    """A fake aligner: reads a read set, emits a SAM-ish alignment."""

    def behavior(ctx):
        reads = ctx.read_input("reads.fq").to_bytes()
        yield from ctx.compute(12.0)
        aligned = b"@" + label.encode() + b"\n" + reads.replace(b"read", b"aln")
        ctx.write_output("aligned.sam", aligned)
        return 0

    return Program(f"align-{label}", behavior)


def merge_program() -> Program:
    def behavior(ctx):
        left = ctx.read_input("left.sam").to_bytes()
        right = ctx.read_input("right.sam").to_bytes()
        yield from ctx.compute(4.0)
        ctx.write_output("merged.sam", left + right)
        return 0

    return Program("merge", behavior)


def analyze_program() -> Program:
    def behavior(ctx):
        merged = ctx.read_input("merged.sam").to_bytes()
        yield from ctx.compute(8.0)
        n_records = merged.count(b"aln")
        ctx.write_output("report.txt",
                         f"aligned records: {n_records}\n".encode())
        return 0

    return Program("analyze", behavior)


def main() -> None:
    testbed = Testbed(n_machines=4, seed=77)
    for program in (align_program("A"), align_program("B"),
                    merge_program(), analyze_program()):
        testbed.programs.register(program)

    client = testbed.make_client()
    reads_a = client.add_local_file("c:/data/sample_a.fq", b"read1 read2 read3\n")
    reads_b = client.add_local_file("c:/data/sample_b.fq", b"read4 read5\n")

    spec = client.new_job_set()
    spec.add(JobSpec(
        name="alignA",
        executable=FileRef(client.add_program_binary(testbed.programs.get("align-A")), "job.exe"),
        inputs=[FileRef(reads_a, "reads.fq")],
        outputs=["aligned.sam"],
    ))
    spec.add(JobSpec(
        name="alignB",
        executable=FileRef(client.add_program_binary(testbed.programs.get("align-B")), "job.exe"),
        inputs=[FileRef(reads_b, "reads.fq")],
        outputs=["aligned.sam"],
    ))
    spec.add(JobSpec(
        name="merge",
        executable=FileRef(client.add_program_binary(testbed.programs.get("merge")), "job.exe"),
        inputs=[
            FileRef("alignA://aligned.sam", "left.sam"),
            FileRef("alignB://aligned.sam", "right.sam"),
        ],
        outputs=["merged.sam"],
    ))
    spec.add(JobSpec(
        name="analyze",
        executable=FileRef(client.add_program_binary(testbed.programs.get("analyze")), "job.exe"),
        inputs=[FileRef("merge://merged.sam", "merged.sam")],
        outputs=["report.txt"],
    ))

    print("dependency order:", " -> ".join(spec.topological_order()))
    outcome, jobset_epr, topic = testbed.run_job_set(client, spec)
    finished = testbed.env.now
    testbed.settle()
    print(f"\njob set {topic}: {outcome} (makespan {finished:.2f}s simulated)")

    # Where did each job run?  (The Scheduler filled these in as it went.)
    from repro.xmlx import NS, QName

    rid = jobset_epr.get(QName(NS.UVACG, "ResourceID"))
    state = testbed.scheduler.store.load("Scheduler", rid)
    placement = state[QName(NS.UVACG, "job_machine")]
    print("\nplacement decisions:")
    for job, machine in placement.items():
        speed = next(m.params.cpu_speed for m in testbed.machines if m.name == machine)
        print(f"  {job:<8s} -> {machine} ({speed:.2f}x)")

    # Fetch the final report from the analyze job's working directory.
    dirs = {
        parse_job_event(n.payload)["job_name"]: parse_job_event(n.payload)["dir_epr"]
        for n in client.listener.received
        if parse_job_event(n.payload).get("kind") == "JobCreated"
    }
    report = testbed.run(client.fetch_output(dirs["analyze"], "report.txt"))
    print(f"\nfinal report: {report.to_bytes().decode().strip()!r}")

    # The two aligners ran in parallel on different machines.
    if placement["alignA"] != placement["alignB"]:
        print("\n(alignA and alignB ran concurrently on different machines)")

    # A text Gantt chart built purely from the client's notifications.
    from repro.gridapp import build_report, render_gantt

    report = build_report(client.listener.received, topic)
    print("\n" + render_gantt(report, width=56))


if __name__ == "__main__":
    main()
