#!/usr/bin/env python3
"""A Monte-Carlo parameter sweep across the heterogeneous campus grid.

The motivating workload for a campus grid: embarrassingly parallel
simulation.  Sixteen independent jobs, each running the same estimator
with a different seed argument, scattered by the Scheduler across
machines of different speeds.  Afterwards the client gathers every
partial result through the directory EPRs and aggregates them — and we
compare the grid makespan against what one desktop would have needed.

Run:  python examples/parameter_sweep.py
"""

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import Program
from repro.xmlx import NS, QName

N_TASKS = 16
WORK_PER_TASK = 25.0


def estimator_program() -> Program:
    """Estimate pi by 'sampling'; the seed argument shifts the estimate.

    Deterministic stand-in for a Monte-Carlo kernel: the per-seed
    estimates differ slightly and average toward pi.
    """

    def behavior(ctx):
        seed = int(ctx.args[0])
        yield from ctx.compute(WORK_PER_TASK)
        estimate = 3.14159265 + ((seed * 2654435761) % 1000 - 500) * 1e-6
        ctx.write_output("estimate.txt", f"{estimate:.8f}\n".encode())
        return 0

    return Program("pi-estimator", behavior)


def main() -> None:
    speeds = [1.0, 1.0, 1.5, 1.5, 2.0, 2.5]
    testbed = Testbed(n_machines=len(speeds), machine_speeds=speeds, seed=1234)
    testbed.programs.register(estimator_program())

    client = testbed.make_client()
    exe_url = client.add_program_binary(testbed.programs.get("pi-estimator"))
    spec = client.new_job_set()
    for i in range(N_TASKS):
        spec.add(
            JobSpec(
                name=f"task{i:02d}",
                executable=FileRef(exe_url, "job.exe"),
                args=[str(i)],
                outputs=["estimate.txt"],
            )
        )

    outcome, jobset_epr, topic = testbed.run_job_set(client, spec)
    makespan = testbed.env.now
    testbed.settle()
    assert outcome == "completed", outcome

    # Placement summary straight from the Scheduler's job set resource.
    rid = jobset_epr.get(QName(NS.UVACG, "ResourceID"))
    state = testbed.scheduler.store.load("Scheduler", rid)
    placement = state[QName(NS.UVACG, "job_machine")]
    per_machine = {}
    for machine in placement.values():
        per_machine[machine] = per_machine.get(machine, 0) + 1
    print("placement (fastest-most-available policy):")
    for machine in sorted(per_machine):
        speed = next(m.params.cpu_speed for m in testbed.machines if m.name == machine)
        print(f"  {machine} ({speed:.1f}x): {per_machine[machine]:2d} tasks "
              + "#" * per_machine[machine])

    # Gather and aggregate every partial result.
    dirs = {
        parse_job_event(n.payload)["job_name"]: parse_job_event(n.payload)["dir_epr"]
        for n in client.listener.received
        if parse_job_event(n.payload).get("kind") == "JobCreated"
    }
    estimates = []
    for name in sorted(dirs):
        content = testbed.run(client.fetch_output(dirs[name], "estimate.txt"))
        estimates.append(float(content.to_bytes().decode().strip()))
    mean = sum(estimates) / len(estimates)

    serial_time = N_TASKS * WORK_PER_TASK / 1.0  # one 1.0x desktop
    print(f"\naggregated estimate of pi from {len(estimates)} tasks: {mean:.6f}")
    print(f"grid makespan: {makespan:8.1f} s simulated")
    print(f"one desktop:   {serial_time:8.1f} s simulated")
    print(f"speedup:       {serial_time / makespan:8.2f}x "
          f"(total grid capacity {sum(speeds):.1f}x)")


if __name__ == "__main__":
    main()
